package dataplane

import (
	"bytes"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/emunet"
	"ncfn/internal/leakcheck"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// codedWire pre-encodes n coded packets of one generation into wire format.
func codedWire(t testing.TB, params rlnc.Params, sess ncproto.SessionID, gen ncproto.GenerationID, seed int64, n int) [][]byte {
	t.Helper()
	enc, err := rlnc.NewEncoder(params, randomBytes(seed, params.GenerationBytes()), seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i := range out {
		cb := enc.Coded()
		out[i] = (&ncproto.Packet{
			Session: sess, Generation: gen, Coeffs: cb.Coeffs, Payload: cb.Payload,
		}).Encode(nil)
	}
	return out
}

// storeVNF builds an unstarted VNF (serial InjectPacket driving) with a
// session store, shared registry, and virtual clock.
func storeVNF(t testing.TB, cfg SessionStoreConfig, opts ...VNFOption) (*VNF, *telemetry.Registry, *simclock.Virtual) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	reg := telemetry.NewRegistry()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	opts = append([]VNFOption{WithSeed(7), WithTelemetry(reg), WithClock(clk), WithSessionStore(cfg)}, opts...)
	v := NewVNF(n.Host("v"), opts...)
	t.Cleanup(func() { v.Close() })
	return v, reg, clk
}

// TestSessionStoreTTLEviction pins TTL-driven reclamation and its full
// accounting trail: idle generations are evicted on sweep, the session-bytes
// gauge drops back to the pooled-arena baseline, the eviction counter and
// flight recorder carry the events, and ending the session returns the gauge
// to zero.
func TestSessionStoreTTLEviction(t *testing.T) {
	ttl := time.Second
	v, reg, clk := storeVNF(t, SessionStoreConfig{TTLNanos: ttl.Nanoseconds()})
	params := smallParams()
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleDecoder}); err != nil {
		t.Fatal(err)
	}
	stateBytes := int64(params.StateBytes())

	const gens = 5
	for g := 0; g < gens; g++ {
		// One packet per generation: decoders stay live, never complete.
		for _, w := range codedWire(t, params, 1, ncproto.GenerationID(g), int64(50+g), 1) {
			v.InjectPacket(w)
		}
	}
	if n, b := v.SessionStoreStats(); n != gens || b != int64(gens)*stateBytes {
		t.Fatalf("before sweep: %d generations / %d bytes, want %d / %d", n, b, gens, gens*int(stateBytes))
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != int64(gens)*stateBytes {
		t.Fatalf("session-bytes gauge = %d, want %d", got, gens*int(stateBytes))
	}

	if got := v.SweepSessions(); got != 0 {
		t.Fatalf("sweep before TTL evicted %d generations, want 0", got)
	}
	clk.Advance(2 * ttl)
	if got := v.SweepSessions(); got != gens {
		t.Fatalf("sweep after TTL evicted %d generations, want %d", got, gens)
	}

	// All live state gone; exactly one decoder arena is pooled for reuse.
	if n, b := v.SessionStoreStats(); n != 0 || b != stateBytes {
		t.Fatalf("after sweep: %d generations / %d bytes, want 0 / %d (pooled arena)", n, b, stateBytes)
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != stateBytes {
		t.Fatalf("session-bytes gauge = %d after sweep, want %d", got, stateBytes)
	}
	if got := reg.Gauge(MetricLiveGenerations, 1).Value(); got != 0 {
		t.Fatalf("live-generations gauge = %d after sweep, want 0", got)
	}
	if got := reg.Counter(MetricGenerationsEvicted, 1).Value(); got != gens {
		t.Fatalf("evicted counter = %d, want %d", got, gens)
	}
	rec := reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventGenerationEvict)
	if len(evs) != gens {
		t.Fatalf("generation-evict events = %d, want %d", len(evs), gens)
	}
	for _, e := range evs {
		if e.Value != stateBytes {
			t.Fatalf("evict event released %d bytes, want %d", e.Value, stateBytes)
		}
		if e.Session != 1 {
			t.Fatalf("evict event session = %d, want 1", e.Session)
		}
	}

	// Ending the session releases the pooled free lists too: zero baseline.
	v.EndSession(1)
	if n, b := v.SessionStoreStats(); n != 0 || b != 0 {
		t.Fatalf("after EndSession: %d generations / %d bytes, want 0 / 0", n, b)
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != 0 {
		t.Fatalf("session-bytes gauge = %d after EndSession, want 0", got)
	}
}

// TestSessionStoreLRUCap pins the generation cap: the least recently touched
// generations are evicted first, late packets for them are counted as
// evicted drops, and eviction never resurrects state.
func TestSessionStoreLRUCap(t *testing.T) {
	const cap = 3
	v, reg, _ := storeVNF(t, SessionStoreConfig{MaxGenerations: cap})
	params := smallParams()
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleDecoder}); err != nil {
		t.Fatal(err)
	}

	const gens = 8
	wires := make([][][]byte, gens)
	for g := 0; g < gens; g++ {
		wires[g] = codedWire(t, params, 1, ncproto.GenerationID(g), int64(90+g), 2)
		v.InjectPacket(wires[g][0])
	}
	if n, _ := v.SessionStoreStats(); n != cap {
		t.Fatalf("tracked generations = %d, want %d (the cap)", n, cap)
	}
	if got := reg.Counter(MetricGenerationsEvicted, 1).Value(); got != gens-cap {
		t.Fatalf("evicted counter = %d, want %d", got, gens-cap)
	}

	// Generation 0 was the LRU victim; its late packet must be dropped and
	// counted, never resurrected.
	drops := reg.Counter(MetricEvictedDrops, v.workers+1)
	before := drops.Value()
	v.InjectPacket(wires[0][1])
	if got := drops.Value(); got != before+1 {
		t.Fatalf("evicted-drops counter = %d, want %d", got, before+1)
	}
	if n, _ := v.SessionStoreStats(); n != cap {
		t.Fatalf("late packet resurrected state: %d generations tracked, want %d", n, cap)
	}

	// The most recently touched generation is still live: its second packet
	// must be accepted (no evicted-drop).
	v.InjectPacket(wires[gens-1][1])
	if got := drops.Value(); got != before+1 {
		t.Fatalf("live generation miscounted as evicted: drops = %d, want %d", got, before+1)
	}
}

// TestSessionStoreMaxBytes pins the byte cap: live coding state is bounded
// by MaxBytes (plus at most one pooled arena per kind), and the store's own
// accounting agrees with the telemetry gauge.
func TestSessionStoreMaxBytes(t *testing.T) {
	params := smallParams()
	stateBytes := int64(params.StateBytes())
	maxBytes := 3 * stateBytes
	v, reg, _ := storeVNF(t, SessionStoreConfig{MaxBytes: maxBytes})
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleDecoder}); err != nil {
		t.Fatal(err)
	}

	const gens = 7
	for g := 0; g < gens; g++ {
		for _, w := range codedWire(t, params, 1, ncproto.GenerationID(g), int64(130+g), 1) {
			v.InjectPacket(w)
		}
	}
	n, b := v.SessionStoreStats()
	if b > maxBytes+stateBytes {
		t.Fatalf("store bytes = %d, want <= %d (cap + one pooled arena)", b, maxBytes+stateBytes)
	}
	if n >= gens {
		t.Fatal("byte cap evicted nothing")
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != b {
		t.Fatalf("gauge (%d) disagrees with store accounting (%d)", got, b)
	}
	if reg.Counter(MetricGenerationsEvicted, 1).Value() == 0 {
		t.Fatal("evicted counter never advanced")
	}
}

// TestSessionStoreGaugeBaselineAfterChurn pins leak-freedom through full
// churn: generations decode and deliver, sessions end, and every byte the
// store accounted comes back off the gauge. Packet-pool accounting and the
// goroutine leak checker guard the same invariant at their layers.
func TestSessionStoreGaugeBaselineAfterChurn(t *testing.T) {
	defer leakcheck.Check(t)
	buffer.SetAccounting(true)
	defer buffer.SetAccounting(false)
	doubleBefore := buffer.DoublePuts()

	v, reg, _ := storeVNF(t, SessionStoreConfig{MaxGenerations: 64})
	params := smallParams()
	const sessions = 8
	for s := 1; s <= sessions; s++ {
		if err := v.Configure(SessionConfig{ID: ncproto.SessionID(s), Params: params, Role: RoleDecoder}); err != nil {
			t.Fatal(err)
		}
	}

	// Full decode churn: every generation completes, so live state drains
	// through the delivery path (decoder recycled to the free list).
	const gens = 6
	k := params.GenerationBlocks
	for g := 0; g < gens; g++ {
		for s := 1; s <= sessions; s++ {
			for _, w := range codedWire(t, params, ncproto.SessionID(s), ncproto.GenerationID(g), int64(1000+g*sessions+s), k+1) {
				v.InjectPacket(w)
			}
		}
	}
	delivered := 0
	for len(v.Deliveries()) > 0 {
		<-v.Deliveries()
		delivered++
	}
	if delivered != sessions*gens {
		t.Fatalf("delivered %d generations, want %d", delivered, sessions*gens)
	}
	if n, b := v.SessionStoreStats(); n != 0 || b != int64(sessions)*int64(params.StateBytes()) {
		t.Fatalf("after churn: %d generations / %d bytes, want 0 live / one pooled arena per session (%d)",
			n, b, sessions*params.StateBytes())
	}

	for s := 1; s <= sessions; s++ {
		v.EndSession(ncproto.SessionID(s))
	}
	if n, b := v.SessionStoreStats(); n != 0 || b != 0 {
		t.Fatalf("after ending all sessions: %d generations / %d bytes, want 0 / 0", n, b)
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != 0 {
		t.Fatalf("session-bytes gauge = %d, want 0", got)
	}
	if got := reg.Gauge(MetricLiveGenerations, 1).Value(); got != 0 {
		t.Fatalf("live-generations gauge = %d, want 0", got)
	}
	if d := buffer.DoublePuts() - doubleBefore; d != 0 {
		t.Fatalf("%d double packet-pool puts during churn", d)
	}
}

// TestSessionStoreDecoderReuseDecodesIdentically pins free-list correctness
// on the decode path: a generation decoded by a recycled decoder must
// deliver exactly the original data.
func TestSessionStoreDecoderReuseDecodesIdentically(t *testing.T) {
	v, _, _ := storeVNF(t, SessionStoreConfig{MaxGenerations: 64})
	params := smallParams()
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleDecoder}); err != nil {
		t.Fatal(err)
	}
	k := params.GenerationBlocks
	const gens = 4 // gen 0 uses a fresh decoder; 1..3 recycle through the free list
	want := make([][]byte, gens)
	for g := 0; g < gens; g++ {
		seed := int64(300 + g)
		want[g] = randomBytes(seed, params.GenerationBytes())
		enc, err := rlnc.NewEncoder(params, want[g], seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k+1; i++ {
			cb := enc.Coded()
			v.InjectPacket((&ncproto.Packet{
				Session: 1, Generation: ncproto.GenerationID(g), Coeffs: cb.Coeffs, Payload: cb.Payload,
			}).Encode(nil))
		}
	}
	for g := 0; g < gens; g++ {
		select {
		case d := <-v.Deliveries():
			if !bytes.Equal(d.Data, want[d.Generation]) {
				t.Fatalf("generation %d decoded wrong bytes via recycled decoder", d.Generation)
			}
		default:
			t.Fatalf("generation %d never delivered", g)
		}
	}
}

// TestSessionStoreRecoderReuseEmitsIdentically pins free-list correctness on
// the recode path differentially: the same packet trace through a VNF with
// the session store (recoders recycled through the free list as the
// generation buffer rolls over) and one without must emit byte-identical
// packets — recycling never changes the coding stream.
func TestSessionStoreRecoderReuseEmitsIdentically(t *testing.T) {
	params := smallParams()
	trace := func(withStore bool) ([]string, [][]byte) {
		conn := newCaptureConn("relay")
		opts := []VNFOption{WithSeed(21), WithBufferCapacity(2)}
		if withStore {
			opts = append(opts, WithSessionStore(SessionStoreConfig{MaxGenerations: 1024}))
		}
		v := NewVNF(conn, opts...)
		defer v.Close()
		if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
			t.Fatal(err)
		}
		v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
		k := params.GenerationBlocks
		// Capacity-2 buffer with 6 generations: FIFO rollover retires live
		// recoders mid-trace, exercising cacheRecoder/takeRecoder repeatedly.
		for g := 0; g < 6; g++ {
			for _, w := range codedWire(t, params, 1, ncproto.GenerationID(g), int64(700+g), k+1) {
				v.InjectPacket(w)
			}
		}
		return conn.dsts, conn.pkts
	}
	plainDst, plainPkt := trace(false)
	storeDst, storePkt := trace(true)
	if len(plainDst) == 0 {
		t.Fatal("trace produced no emissions")
	}
	if len(plainDst) != len(storeDst) {
		t.Fatalf("emission count differs: plain %d, store %d", len(plainDst), len(storeDst))
	}
	for i := range plainDst {
		if plainDst[i] != storeDst[i] || !bytes.Equal(plainPkt[i], storePkt[i]) {
			t.Fatalf("emission %d differs between plain and store-recycled runs", i)
		}
	}
}

// TestSessionStoreReviveAfterEviction pins the revive path: a session whose
// generations were evicted can be reconfigured and decode fresh generations
// (including IDs that were tombstoned before the revive).
func TestSessionStoreReviveAfterEviction(t *testing.T) {
	ttl := time.Second
	v, reg, clk := storeVNF(t, SessionStoreConfig{TTLNanos: ttl.Nanoseconds()})
	params := smallParams()
	cfg := SessionConfig{ID: 1, Params: params, Role: RoleDecoder}
	if err := v.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	v.InjectPacket(codedWire(t, params, 1, 0, 41, 1)[0])
	clk.Advance(2 * ttl)
	if got := v.SweepSessions(); got != 1 {
		t.Fatalf("evicted %d generations, want 1", got)
	}

	// Revive: reconfiguration replaces the state wholesale — tombstones
	// included — so generation 0 decodes cleanly afterwards.
	if err := v.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != 0 {
		t.Fatalf("gauge = %d after revive, want 0", got)
	}
	k := params.GenerationBlocks
	for _, w := range codedWire(t, params, 1, 0, 42, k+1) {
		v.InjectPacket(w)
	}
	select {
	case d := <-v.Deliveries():
		if d.Generation != 0 {
			t.Fatalf("delivered generation %d, want 0", d.Generation)
		}
	default:
		t.Fatal("revived session never decoded generation 0")
	}
}

// FuzzSessionLifecycle drives random interleavings of the session lifecycle
// — traffic, clock advances, sweeps, session end, revive — and requires the
// store's invariants at every step: no panic, non-negative accounting, gauge
// consistent with the store, and a zero baseline after final teardown.
func FuzzSessionLifecycle(f *testing.F) {
	params := smallParams()
	k := params.GenerationBlocks
	const nSessions, nGens = 3, 8
	// Shared read-only packet rings: [session][generation][packet].
	rings := make([][][][]byte, nSessions)
	for s := 0; s < nSessions; s++ {
		rings[s] = make([][][]byte, nGens)
		for g := 0; g < nGens; g++ {
			rings[s][g] = codedWire(f, params, ncproto.SessionID(s+1), ncproto.GenerationID(g),
				int64(5000+s*nGens+g), k+1)
		}
	}

	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{0, 0, 0, 3, 4, 5, 0, 0, 3, 4})
	f.Add(bytes.Repeat([]byte{2, 3, 4}, 40))

	f.Fuzz(func(t *testing.T, ops []byte) {
		v, reg, clk := storeVNF(t, SessionStoreConfig{
			MaxGenerations: 6,
			TTLNanos:       (2 * time.Second).Nanoseconds(),
			MaxBytes:       12 * int64(params.StateBytes()),
		})
		for s := 0; s < nSessions; s++ {
			if err := v.Configure(SessionConfig{ID: ncproto.SessionID(s + 1), Params: params, Role: RoleDecoder}); err != nil {
				t.Fatal(err)
			}
		}
		pktIdx := make([]int, nSessions*nGens)
		for i, op := range ops {
			s := i % nSessions
			g := int(op>>4) % nGens
			switch op % 6 {
			case 0, 1, 2: // inject the next packet of (s, g) — may be late for an evicted gen
				ring := rings[s][g]
				idx := pktIdx[s*nGens+g] % len(ring)
				pktIdx[s*nGens+g]++
				v.InjectPacket(ring[idx])
			case 3:
				clk.Advance(time.Second)
			case 4:
				v.SweepSessions()
			case 5: // end, and on odd rounds revive
				id := ncproto.SessionID(s + 1)
				v.EndSession(id)
				if op&0x40 != 0 {
					if err := v.Configure(SessionConfig{ID: id, Params: params, Role: RoleDecoder}); err != nil {
						t.Fatal(err)
					}
				}
			}
			n, b := v.SessionStoreStats()
			if n < 0 || b < 0 {
				t.Fatalf("op %d: negative accounting: %d generations / %d bytes", i, n, b)
			}
			if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != b {
				t.Fatalf("op %d: gauge (%d) diverged from store accounting (%d)", i, got, b)
			}
			if got := reg.Gauge(MetricLiveGenerations, 1).Value(); got != int64(n) {
				t.Fatalf("op %d: live-generations gauge (%d) diverged from store (%d)", i, got, n)
			}
		}
		for s := 0; s < nSessions; s++ {
			v.EndSession(ncproto.SessionID(s + 1))
		}
		if n, b := v.SessionStoreStats(); n != 0 || b != 0 {
			t.Fatalf("after teardown: %d generations / %d bytes, want 0 / 0", n, b)
		}
		if got := reg.Gauge(MetricSessionBytes, 1).Value(); got != 0 {
			t.Fatalf("gauge = %d after teardown, want 0", got)
		}
	})
}

// BenchmarkManySessionPipeline measures the serial packet path with the
// session store enforcing bounds across many concurrent recoder sessions —
// the massive-multi-tenancy configuration the store exists for. The ring
// interleaves sessions so consecutive packets hit different coding states,
// and wraps across generations so retired recoders recycle through the
// free lists continuously.
func BenchmarkManySessionPipeline(b *testing.B) {
	params := smallParams()
	const sessions = 1024
	ring := benchRing(b, params, sessions, 4)
	conn := newBenchConn(nil, 0)
	v := NewVNF(conn, WithSeed(77), WithSessionStore(SessionStoreConfig{
		MaxGenerations: 2 * sessions,
		MaxBytes:       int64(4*sessions) * int64(params.StateBytes()),
	}))
	defer v.Close()
	for s := 1; s <= sessions; s++ {
		id := ncproto.SessionID(s)
		if err := v.Configure(SessionConfig{ID: id, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
			b.Fatal(err)
		}
		v.Table().Set(id, []HopGroup{{Addrs: []string{"sink"}}})
	}
	b.SetBytes(int64(params.BlockSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.InjectPacket(ring[i%len(ring)])
	}
}
