package dataplane

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// Role is a VNF's function for one session (NC_SETTINGS assigns "VNF roles
// (encoder or decoder) associated with different sessions").
type Role int

// Roles.
const (
	// RoleRecoder mixes buffered packets into fresh coded packets.
	RoleRecoder Role = iota + 1
	// RoleDecoder recovers generations and delivers them.
	RoleDecoder
	// RoleForwarder relays packets unchanged.
	RoleForwarder
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleRecoder:
		return "recoder"
	case RoleDecoder:
		return "decoder"
	case RoleForwarder:
		return "forwarder"
	case RoleCustom:
		return "custom"
	default:
		return "unknown"
	}
}

// SessionConfig is the per-session configuration a VNF receives in its
// NC_SETTINGS message.
type SessionConfig struct {
	ID     ncproto.SessionID
	Params rlnc.Params
	Role   Role
	// Redundancy is the number of extra coded packets emitted per
	// generation beyond the generation size (NC0 = 0, NC1 = 1, NC2 = 2 in
	// Fig. 8/9).
	Redundancy int
	// InPerGen is the number of packets this node expects to receive per
	// generation (its inbound conceptual-flow allocation); zero means the
	// full generation size. Recoders pace their per-hop emission quotas
	// against it.
	InPerGen int
}

// Delivery is one decoded generation handed to the application layer.
type Delivery struct {
	Session    ncproto.SessionID
	Generation ncproto.GenerationID
	Data       []byte
}

// Stats are cumulative VNF counters.
type Stats struct {
	PacketsIn        uint64
	PacketsOut       uint64
	PacketsDropped   uint64 // malformed or unknown-session packets
	GenerationsDone  uint64 // decoder only
	RecodedEmissions uint64
	Forwarded        uint64
}

// VNF is one network coding function instance.
//
// The packet path is a pipeline (Sec. III-B's "pipelined fashion"): the
// receive goroutine only peeks the fixed header — counting the packet,
// surfacing control ACKs, and hashing the session ID onto one of N worker
// shards — while the GF(2^8) work happens on the shard workers. All packets
// of a session land on the same shard, so per-session ordering is
// preserved while independent sessions recode concurrently.
type VNF struct {
	conn  emunet.PacketConn
	table *ForwardingTable
	buf   *buffer.Buffer
	seed  int64

	// codingBytesPerSec, when positive, models coding CPU cost (see
	// WithCodingCost).
	codingBytesPerSec float64
	costMu            sync.Mutex
	costDebt          time.Duration

	mu       sync.RWMutex
	sessions map[ncproto.SessionID]*sessionState

	// store, when configured (WithSessionStore), bounds live generation
	// state with LRU/TTL/byte-cap eviction and accounts retained memory.
	store *sessionStore

	// pauseSwap selects the legacy pause-swap-resume table update
	// (WithPauseTableSwap); the default is the RCU path, which publishes a
	// new snapshot and waits out a grace period without stopping any shard.
	pauseSwap bool

	workers int
	txDepth int
	shards  []*vnfShard

	// reg holds the VNF's instruments (see telemetry.go); tel caches the
	// resolved handles so the hot path never touches the registry's mutex.
	// clock stamps flight-recorder events and latency measurements.
	reg   *telemetry.Registry
	tel   vnfTelemetry
	clock simclock.Clock
	node  string

	deliveries chan Delivery
	acks       chan ncproto.Ack

	// Drain lifecycle (see drain.go). draining flips once on Drain and
	// gates admission of new coding state; quiesced latches when a
	// quiescence sweep finds the pipeline empty; drainStartNs stamps the
	// transition for the drain-duration flight event.
	draining     atomic.Bool
	quiesced     atomic.Bool
	drainStartNs atomic.Int64

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// pktJob is one datagram in flight from the receive goroutine to a shard
// worker. The buffer came from the packet pool (via conn.Recv); the worker
// recycles it after processing.
type pktJob struct {
	pkt []byte
	hdr ncproto.Header
}

// vnfShard is one worker lane of the data-plane pipeline. Its scratch
// fields are touched only while pauseMu is held (by the shard's worker, a
// synchronous handlePacket caller, or a paused table update), so the
// steady-state packet path reuses them without allocating.
type vnfShard struct {
	in chan pktJob

	// idx is the shard's position; counter writes from this shard land on
	// telemetry cell idx+1 (cell 0 belongs to the receive goroutine).
	idx int

	// pauseMu serializes this shard's packet processing against
	// forwarding-table updates in the legacy pause mode (the SIGUSR1
	// pause/resume cycle of Sec. III-A) and against synchronous
	// handlePacket callers. Packet processing only ever holds its own
	// shard's lock, so sessions on other shards keep flowing while one
	// shard is busy. pauseMu is the outermost lock of the declared
	// //nc:lockorder chain in sessionstore.go.
	pauseMu sync.Mutex

	// epoch is the shard's RCU grace-period counter: incremented entering
	// and leaving the processing critical section, so an odd value means
	// "inside". After publishing a new table snapshot, an RCU table update
	// waits until every shard's epoch is even or has changed — at that
	// point no in-flight processing can still be reading the old snapshot.
	epoch atomic.Uint64

	pkt    ncproto.Packet    // decoded view of the in-flight datagram
	wire   []byte            // outgoing wire-format scratch
	hops   []string          // forwarder next-hop scratch
	groups []HopGroup        // recoder hop-group scratch
	emDst  []string          // emission destinations, parallel to emCB
	emCB   []rlnc.CodedBlock // reusable emission blocks
	jobs   []pktJob          // dequeued run of datagrams (worker batch drain)
	batch  []rlnc.CodedBlock // decoder-batch views into the run's buffers

	// txc, when non-nil (WithTxCoalesce over a BatchPacketConn), collects
	// this shard's outgoing packets into per-destination rings flushed via
	// SendBatch — at ring depth or at the end of the processing run.
	// Guarded by pauseMu like the rest of the shard scratch.
	txc *txCoalescer
}

type sessionState struct {
	cfg SessionConfig

	// Per-session wire counters (atomic; read by SessionStats).
	pktsIn  atomic.Uint64
	pktsOut atomic.Uint64
	done    atomic.Uint64

	mu sync.Mutex
	// emitted counts packets sent per generation per hop-group index
	// (recoder role).
	emitted map[ncproto.GenerationID][]int
	// received counts packets received per generation (recoder role).
	received map[ncproto.GenerationID]int
	recoders map[ncproto.GenerationID]*rlnc.Recoder
	decoders map[ncproto.GenerationID]*rlnc.Decoder
	// delivered marks generations already handed to the application.
	delivered map[ncproto.GenerationID]bool
	// started stamps when each generation's decoder was created (clock
	// nanoseconds), feeding the decode-latency histogram at delivery.
	started map[ncproto.GenerationID]int64
	nextSeed  int64
	// custom is the pluggable packet module for RoleCustom sessions.
	custom Function

	// Session-store state (nil/zero unless WithSessionStore is configured).
	// evicted tombstones generations whose coding state was evicted: late
	// packets for them are counted as drops and never resurrect state.
	// maxGen tracks the newest generation seen, bounding the tombstone set
	// to the reordering window. closed marks a session removed by
	// EndSession (or replaced by Configure) so racing packet processing
	// stops tracking it. freeDec/freeRec pool finished codecs for arena
	// reuse across generations; stateBytes is the per-generation footprint
	// estimate (rlnc.Params.StateBytes).
	evicted    map[ncproto.GenerationID]bool
	maxGen     ncproto.GenerationID
	closed     bool
	stateBytes int64
	freeDec    []*rlnc.Decoder
	freeRec    []*rlnc.Recoder
}

// Option configures a VNF.
type VNFOption func(*VNF)

// WithBufferCapacity overrides the generation buffer capacity (Fig. 5's
// sweep parameter); the default is buffer.DefaultCapacity (1024).
func WithBufferCapacity(generations int) VNFOption {
	return func(v *VNF) { v.buf = buffer.New(generations) }
}

// WithSeed fixes the VNF's coding randomness for reproducible tests.
func WithSeed(seed int64) VNFOption {
	return func(v *VNF) { v.seed = seed }
}

// WithWorkers sets the number of pipeline shards (worker goroutines)
// packets are dispatched across by session ID. The default is GOMAXPROCS;
// one worker reproduces the fully serial data plane.
func WithWorkers(n int) VNFOption {
	return func(v *VNF) { v.workers = n }
}

// WithPauseTableSwap selects the legacy pause-swap-resume forwarding-table
// update: every shard's pauseMu is held for the duration of the swap and
// pause/resume events land in the flight recorder. The default is the RCU
// path — a copy-on-write snapshot publish plus an epoch grace period — which
// never stops packet processing. The pause mode survives as the semantic
// reference: the differential test pins both modes to identical forwarding
// decisions and decode verdicts.
func WithPauseTableSwap() VNFOption {
	return func(v *VNF) { v.pauseSwap = true }
}

// WithTxCoalesce batches outgoing coded packets: each shard accumulates
// up to depth packets per destination and flushes them through the conn's
// SendBatch (sendmmsg on linux), amortizing the per-packet syscall. A
// ring also flushes at the end of every processing run, so coalescing
// never delays a packet beyond the burst that produced it. Depth <= 1, or
// a conn without a batch path, disables coalescing and reproduces the
// per-packet send path exactly.
//
// With coalescing on, tx counters are bumped at enqueue rather than at
// syscall success: flush failures follow datagram semantics (dropped, not
// retried), exactly as a kernel would drop on a full device queue.
func WithTxCoalesce(depth int) VNFOption {
	return func(v *VNF) { v.txDepth = depth }
}

// WithCodingCost models the CPU cost of GF(2^8) coding at the given
// effective rate (bytes of generation data combined per second). The data
// plane charges the actual kernel traffic its codecs report (TakeWork):
// incremental elimination costs O(rank) row operations per packet while the
// deferred batch path costs one copy per packet plus a single blocked
// inverse + fused multiply per generation — so large generations throttle a
// VNF's packet rate exactly as far as their real row traffic demands, the
// "encoding and decoding complexity is high" effect behind Fig. 4's
// throughput plunge. Zero (the default) disables the model; the experiment
// harness calibrates it to the paper's VM class.
func WithCodingCost(bytesPerSecond float64) VNFOption {
	return func(v *VNF) { v.codingBytesPerSec = bytesPerSecond }
}

// chargeCodingCost accumulates coding work and sleeps whenever the debt
// exceeds a scheduling-friendly quantum.
func (v *VNF) chargeCodingCost(workBytes int) {
	if v.codingBytesPerSec <= 0 {
		return
	}
	v.costMu.Lock()
	v.costDebt += time.Duration(float64(workBytes) / v.codingBytesPerSec * float64(time.Second))
	debt := v.costDebt
	if debt < time.Millisecond {
		v.costMu.Unlock()
		return
	}
	v.costDebt = 0
	v.costMu.Unlock()
	time.Sleep(debt)
}

// NewVNF constructs a VNF on the given conn. Call Start to begin packet
// processing and Close to stop it.
func NewVNF(conn emunet.PacketConn, opts ...VNFOption) *VNF {
	v := &VNF{
		conn:       conn,
		table:      NewForwardingTable(),
		buf:        buffer.New(0),
		seed:       1,
		sessions:   make(map[ncproto.SessionID]*sessionState),
		deliveries: make(chan Delivery, 1024),
		acks:       make(chan ncproto.Ack, 1024),
		done:       make(chan struct{}),
		reg:        telemetry.NewRegistry(),
		clock:      simclock.Real{},
	}
	for _, o := range opts {
		o(v)
	}
	if v.workers <= 0 {
		v.workers = runtime.GOMAXPROCS(0)
	}
	if v.workers < 1 {
		v.workers = 1
	}
	v.shards = make([]*vnfShard, v.workers)
	for i := range v.shards {
		v.shards[i] = &vnfShard{
			in:  make(chan pktJob, 256),
			idx: i,
			txc: newTxCoalescer(conn, v.txDepth),
		}
	}
	v.node = conn.LocalAddr()
	v.tel = newVNFTelemetry(v.reg, v.workers)
	return v
}

// shardFor maps a session to its pipeline shard. All generations of a
// session hash to the same shard, preserving per-session packet order.
func (v *VNF) shardFor(s ncproto.SessionID) *vnfShard {
	return v.shards[int(s)%len(v.shards)]
}

// pauseAll stops packet processing on every shard (locks are taken in
// shard order, so concurrent pausers cannot deadlock against workers that
// each hold only their own shard's lock).
func (v *VNF) pauseAll() {
	for _, sh := range v.shards {
		sh.pauseMu.Lock()
	}
}

// resumeAll releases every shard.
func (v *VNF) resumeAll() {
	for i := len(v.shards) - 1; i >= 0; i-- {
		v.shards[i].pauseMu.Unlock()
	}
}

// Addr returns the VNF's network address.
func (v *VNF) Addr() string { return v.conn.LocalAddr() }

// Table returns the VNF's forwarding table.
func (v *VNF) Table() *ForwardingTable { return v.table }

// Deliveries returns the channel of decoded generations (decoder role).
func (v *VNF) Deliveries() <-chan Delivery { return v.deliveries }

// Acks returns the channel of received generation acknowledgements
// (sources consume these for reliability and delay measurement).
func (v *VNF) Acks() <-chan ncproto.Ack { return v.acks }

// Configure installs (or replaces) a session configuration, as NC_SETTINGS
// does on a freshly started VNF.
func (v *VNF) Configure(cfg SessionConfig) error {
	if v.draining.Load() {
		return fmt.Errorf("dataplane: configure session %d: %w", cfg.ID, ErrDraining)
	}
	if err := cfg.Params.Validate(); err != nil {
		return fmt.Errorf("dataplane: configure session %d: %w", cfg.ID, err)
	}
	switch cfg.Role {
	case RoleRecoder, RoleDecoder, RoleForwarder:
	default:
		return fmt.Errorf("dataplane: configure session %d: invalid role %d", cfg.ID, int(cfg.Role))
	}
	v.mu.Lock()
	old := v.sessions[cfg.ID]
	v.sessions[cfg.ID] = &sessionState{
		cfg:        cfg,
		emitted:    make(map[ncproto.GenerationID][]int),
		received:   make(map[ncproto.GenerationID]int),
		recoders:   make(map[ncproto.GenerationID]*rlnc.Recoder),
		decoders:   make(map[ncproto.GenerationID]*rlnc.Decoder),
		delivered:  make(map[ncproto.GenerationID]bool),
		started:    make(map[ncproto.GenerationID]int64),
		nextSeed:   v.seed,
		stateBytes: int64(cfg.Params.StateBytes()),
	}
	v.mu.Unlock()
	if old != nil {
		// Reconfiguring an existing session (a revive) replaces its state
		// wholesale; release everything the old state pinned.
		v.retireSessionState(cfg.ID, old)
		v.buf.DropSession(cfg.ID)
	}
	return nil
}

// EndSession drops a session's configuration and buffered state (sent on
// session termination before NC_VNF_END).
func (v *VNF) EndSession(id ncproto.SessionID) {
	v.mu.Lock()
	st := v.sessions[id]
	delete(v.sessions, id)
	v.mu.Unlock()
	if st != nil {
		v.retireSessionState(id, st)
	}
	v.buf.DropSession(id)
	v.table.Delete(id)
}

// retireSessionState releases the session-store accounting a removed (or
// replaced) sessionState holds: its live generation entries and its pooled
// free-list arenas. The closed mark stops a racing packet-processing hold of
// the old state from re-tracking it afterwards.
func (v *VNF) retireSessionState(id ncproto.SessionID, st *sessionState) {
	if v.store == nil {
		return
	}
	st.mu.Lock()
	st.closed = true
	freed := st.releaseFreeLists()
	st.mu.Unlock()
	if freed != 0 {
		v.store.adjust(-freed, &v.tel)
	}
	v.store.removeSession(id, &v.tel)
}

// Start launches the pipeline: one receive goroutine plus the shard
// workers. It returns immediately.
func (v *VNF) Start() {
	v.wg.Add(1 + len(v.shards))
	for _, sh := range v.shards {
		go v.worker(sh)
	}
	go v.run()
}

// Close stops the VNF and joins its goroutines.
func (v *VNF) Close() error {
	var err error
	v.closeOnce.Do(func() {
		close(v.done)
		err = v.conn.Close()
		v.wg.Wait()
	})
	return err
}

// Stats returns a snapshot of the VNF's counters, aggregated across
// telemetry cells.
func (v *VNF) Stats() Stats {
	return Stats{
		PacketsIn:        v.tel.rx.Value(),
		PacketsOut:       v.tel.tx.Value(),
		PacketsDropped:   v.tel.drops.Value(),
		GenerationsDone:  v.tel.gens.Value(),
		RecodedEmissions: v.tel.recoded.Value(),
		Forwarded:        v.tel.forwarded.Value(),
	}
}

// dropPkt counts n dropped packets on the given counter cell and leaves a
// flight-recorder trace so post-mortems can see what was being dropped
// when.
func (v *VNF) dropPkt(cell int, sess ncproto.SessionID, gen ncproto.GenerationID, n int) {
	v.tel.drops.Add(cell, uint64(n))
	v.tel.rec.Record(v.clock.Now().UnixNano(), telemetry.EventPacketDrop, v.node,
		uint64(sess), uint64(gen), int64(n))
}

// SessionStats reports one session's counters at this VNF.
type SessionStats struct {
	// PacketsIn counts well-formed data packets received for the session.
	PacketsIn uint64
	// PacketsOut counts recoded emissions (recoder role).
	PacketsOut uint64
	// GenerationsDone counts delivered generations (decoder role).
	GenerationsDone uint64
	// GenerationsActive counts generations with live coding state.
	GenerationsActive int
	Role              Role
}

// SessionStatsFor returns per-session counters, or false if the session is
// not configured on this VNF.
func (v *VNF) SessionStatsFor(id ncproto.SessionID) (SessionStats, bool) {
	v.mu.RLock()
	st := v.sessions[id]
	v.mu.RUnlock()
	if st == nil {
		return SessionStats{}, false
	}
	st.mu.Lock()
	active := len(st.recoders) + len(st.decoders)
	st.mu.Unlock()
	return SessionStats{
		PacketsIn:         st.pktsIn.Load(),
		PacketsOut:        st.pktsOut.Load(),
		GenerationsDone:   st.done.Load(),
		GenerationsActive: active,
		Role:              st.cfg.Role,
	}, true
}

// SessionIDs lists the sessions configured on this VNF, sorted ascending —
// the live half of a deploy-file reload diff.
func (v *VNF) SessionIDs() []ncproto.SessionID {
	v.mu.RLock()
	ids := make([]ncproto.SessionID, 0, len(v.sessions))
	for id := range v.sessions {
		ids = append(ids, id)
	}
	v.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SessionConfigFor returns a session's live configuration, or false if the
// session is not configured on this VNF.
func (v *VNF) SessionConfigFor(id ncproto.SessionID) (SessionConfig, bool) {
	v.mu.RLock()
	st := v.sessions[id]
	v.mu.RUnlock()
	if st == nil {
		return SessionConfig{}, false
	}
	return st.cfg, true
}

// UpdateTable atomically replaces forwarding entries (nil hop lists delete
// their session).
//
// In the default RCU mode the new entries are published as one immutable
// snapshot — packet processing never stops — and UpdateTable then waits out
// an epoch grace period: when it returns, every shard has finished any
// processing that could still have been reading the previous snapshot, and
// every packet processed after the return sees the new table. No pause
// event is recorded and the table-swap pause histogram stays empty.
//
// Under WithPauseTableSwap it mirrors the daemon's SIGUSR1 pause → reload →
// resume cycle: all shards are pause-locked for the swap and the pause
// duration is observed. It returns once processing has resumed.
func (v *VNF) UpdateTable(entries map[ncproto.SessionID][]HopGroup) {
	defer v.tel.tableSwaps.Inc(0)
	if v.pauseSwap {
		v.pauseAll()
		defer v.resumeAll()
		start := v.pauseEvent()
		defer v.resumeEvent(start)
		v.table.ApplyBatch(entries)
		return
	}
	v.table.ApplyBatch(entries)
	v.synchronize()
}

// synchronize waits out one RCU grace period: for every shard that is
// inside its processing critical section (odd epoch), spin until the epoch
// changes. Snapshot publication happens-before the epoch loads here, and a
// shard re-reads the table pointer on every lookup, so once each shard has
// left the critical section it was in (or was idle), no reader of the old
// snapshot remains.
func (v *VNF) synchronize() {
	for _, sh := range v.shards {
		e := sh.epoch.Load()
		if e&1 == 0 {
			continue
		}
		for sh.epoch.Load() == e {
			runtime.Gosched()
		}
	}
}

// pauseEvent records a pause marker once every shard is held and returns
// the pause start time.
func (v *VNF) pauseEvent() int64 {
	start := v.clock.Now().UnixNano()
	v.tel.rec.Record(start, telemetry.EventPause, v.node, 0, 0, 0)
	return start
}

// resumeEvent records the matching resume marker (Value carries the paused
// duration in nanoseconds) and feeds the table-swap histogram.
func (v *VNF) resumeEvent(start int64) {
	now := v.clock.Now().UnixNano()
	v.tel.tableSwap.Observe(now - start)
	v.tel.rec.Record(now, telemetry.EventResume, v.node, 0, 0, now-start)
}

// ReloadTableFile loads a table file pushed by the controller and swaps it
// in — the full NC_FORWARD_TAB handling path whose latency Table III
// reports. The swap follows the VNF's table-update mode: RCU publish +
// grace period by default, pause-swap-resume under WithPauseTableSwap.
func (v *VNF) ReloadTableFile(path string) error {
	t, err := LoadTable(path)
	if err != nil {
		return err
	}
	defer v.tel.tableSwaps.Inc(0)
	if v.pauseSwap {
		v.pauseAll()
		defer v.resumeAll()
		start := v.pauseEvent()
		defer v.resumeEvent(start)
		v.table.ReplaceAll(t.Snapshot())
		return nil
	}
	v.table.ReplaceAll(t.Snapshot())
	v.synchronize()
	return nil
}

// run is the poll-mode receive loop: peek the fixed header, dispatch to
// the session's shard. No GF math and no full parse happens here.
func (v *VNF) run() {
	defer v.wg.Done()
	// The receive goroutine is the only sender into the shard channels;
	// closing them on exit drains and stops the workers.
	defer func() {
		for _, sh := range v.shards {
			close(sh.in)
		}
	}()
	for {
		pkt, _, err := v.conn.Recv()
		if err != nil {
			if errors.Is(err, emunet.ErrClosed) {
				return
			}
			select {
			case <-v.done:
				return
			default:
				continue
			}
		}
		hdr, ok := v.classify(pkt)
		if !ok {
			buffer.PutPacket(pkt)
			continue
		}
		v.shardFor(hdr.Session).in <- pktJob{pkt: pkt, hdr: hdr}
	}
}

// drainBatch bounds how many queued datagrams a shard worker dequeues per
// lock acquisition. Under load the queue runs deep, so decoder packets for
// the same generation arrive at the coding layer as one batch and deferred
// elimination materializes; when traffic is light the worker degenerates to
// one packet per wakeup and adds no latency.
const drainBatch = 32

// worker drains one shard's queue in runs of up to drainBatch datagrams.
// Every recv buffer of a run is owned by the worker from dequeue to
// PutPacket; nothing downstream retains it (coding state is copied into
// recoder/decoder arenas, emissions are encoded into shard scratch, and
// conn.Send copies before returning). Holding the buffers across the whole
// run is what lets decoder batches alias packet payloads in place.
//
//nc:hotpath
func (v *VNF) worker(sh *vnfShard) {
	defer v.wg.Done()
	for {
		job, ok := <-sh.in
		if !ok {
			return
		}
		sh.jobs = append(sh.jobs[:0], job)
	drain:
		for len(sh.jobs) < drainBatch {
			select {
			case j, ok := <-sh.in:
				if !ok {
					break drain
				}
				sh.jobs = append(sh.jobs, j)
			default:
				break drain
			}
		}
		v.tel.batch.Observe(int64(len(sh.jobs)))
		v.tel.queueDepth.Set(sh.idx, int64(len(sh.in)))
		sh.pauseMu.Lock()
		sh.epoch.Add(1) // odd: inside the processing critical section
		v.processRun(sh, sh.jobs)
		if sh.txc != nil {
			// Drain flush: the run is over, nothing more is coming this
			// wakeup, so push out every partially filled ring.
			sh.txc.flush()
		}
		sh.epoch.Add(1) // even: quiescent
		sh.pauseMu.Unlock()
		for i := range sh.jobs {
			buffer.PutPacket(sh.jobs[i].pkt)
			sh.jobs[i] = pktJob{}
		}
		if v.store != nil {
			// Session-store eviction runs here, between runs, when this
			// goroutine holds no session or shard lock: victims' st.mu can
			// be taken freely.
			v.enforceStore()
		}
	}
}

// processRun handles one dequeued run of datagrams under the shard lock.
// Consecutive decoder-role packets for the same (session, generation) are
// handed to the decoder as one AddBatch call; everything else takes the
// per-packet path in arrival order, so per-session packet order is
// preserved exactly.
//
//nc:hotpath
func (v *VNF) processRun(sh *vnfShard, jobs []pktJob) {
	for i := 0; i < len(jobs); {
		hdr := jobs[i].hdr
		v.mu.RLock()
		st := v.sessions[hdr.Session]
		v.mu.RUnlock()
		if st == nil {
			v.dropPkt(sh.idx+1, hdr.Session, hdr.Generation, 1)
			i++
			continue
		}
		if st.cfg.Role != RoleDecoder {
			v.processWith(sh, st, jobs[i].pkt, hdr)
			i++
			continue
		}
		run := i + 1
		for run < len(jobs) &&
			jobs[run].hdr.Session == hdr.Session &&
			jobs[run].hdr.Generation == hdr.Generation {
			run++
		}
		k := st.cfg.Params.GenerationBlocks
		sh.batch = sh.batch[:0]
		for _, job := range jobs[i:run] {
			p := &sh.pkt
			if err := ncproto.DecodeInto(p, job.pkt, k); err != nil ||
				len(p.Payload) != st.cfg.Params.BlockSize {
				v.dropPkt(sh.idx+1, hdr.Session, hdr.Generation, 1)
				continue
			}
			st.pktsIn.Add(1)
			// The views stay valid: the run's recv buffers are held until
			// the whole run is processed.
			sh.batch = append(sh.batch, rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload})
		}
		v.decodeBatch(sh.idx+1, st, hdr.Session, hdr.Generation, sh.batch)
		i = run
	}
}

// classify does the receive-side share of packet handling: count the
// arrival, peek the fixed header, and surface control ACKs. It reports
// whether the packet needs shard processing.
func (v *VNF) classify(pkt []byte) (ncproto.Header, bool) {
	v.tel.rx.Inc(0)
	hdr, err := ncproto.PeekHeader(pkt)
	if err != nil {
		v.dropPkt(0, 0, 0, 1)
		return hdr, false
	}
	// Control packets (generation ACKs) surface to the application.
	if hdr.Control() {
		select {
		case v.acks <- ncproto.Ack{Session: hdr.Session, Generation: hdr.Generation}:
		default:
		}
		return hdr, false
	}
	return hdr, true
}

// handlePacket processes one datagram synchronously on the caller's
// goroutine — the serial path used before Start (tests, benchmarks) and
// the semantic reference for the pipeline: classify + process on the
// session's shard. The caller keeps ownership of pkt.
func (v *VNF) handlePacket(pkt []byte, _ string) {
	hdr, ok := v.classify(pkt)
	if !ok {
		return
	}
	sh := v.shardFor(hdr.Session)
	sh.pauseMu.Lock()
	sh.epoch.Add(1)
	v.process(sh, pkt, hdr)
	if sh.txc != nil {
		sh.txc.flush()
	}
	sh.epoch.Add(1)
	sh.pauseMu.Unlock()
	if v.store != nil {
		v.enforceStore()
	}
}

// InjectPacket processes one datagram synchronously on the caller's
// goroutine, without the receive loop: the entry point for deterministic
// harnesses (the chaostest churn suite drives thousands of sessions through
// it under a virtual clock) and benchmarks. The caller keeps ownership of
// pkt. Concurrent callers are safe — injection serializes on the session's
// shard exactly like piped traffic.
func (v *VNF) InjectPacket(pkt []byte) {
	v.handlePacket(pkt, "")
}

// process runs the session-role work for one datagram on its shard — the
// single-packet semantic reference the batched run path must match.
func (v *VNF) process(sh *vnfShard, pkt []byte, hdr ncproto.Header) {
	v.mu.RLock()
	st := v.sessions[hdr.Session]
	v.mu.RUnlock()
	if st == nil {
		v.dropPkt(sh.idx+1, hdr.Session, hdr.Generation, 1)
		return
	}
	v.processWith(sh, st, pkt, hdr)
}

// processWith runs the role work for one datagram whose session state has
// been resolved. The header has already been validated; the single full
// parse of the packet happens here, into the shard's reusable Packet.
func (v *VNF) processWith(sh *vnfShard, st *sessionState, pkt []byte, hdr ncproto.Header) {
	p := &sh.pkt
	if err := ncproto.DecodeInto(p, pkt, st.cfg.Params.GenerationBlocks); err != nil ||
		len(p.Payload) != st.cfg.Params.BlockSize {
		v.dropPkt(sh.idx+1, hdr.Session, hdr.Generation, 1)
		return
	}
	st.pktsIn.Add(1)

	switch st.cfg.Role {
	case RoleForwarder:
		v.forward(sh, p)
	case RoleRecoder:
		v.recode(sh, st, p)
	case RoleDecoder:
		sh.batch = append(sh.batch[:0], rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload})
		v.decodeBatch(sh.idx+1, st, p.Session, p.Generation, sh.batch)
	case RoleCustom:
		v.runCustom(sh, st, p)
	}
}

// forward relays the packet unchanged to all next hops, encoding once into
// the shard's wire scratch.
func (v *VNF) forward(sh *vnfShard, p *ncproto.Packet) {
	sh.hops = v.table.AppendNextHops(sh.hops[:0], p.Session, p.Generation)
	if len(sh.hops) == 0 {
		return
	}
	sh.wire = p.Encode(sh.wire)
	for _, h := range sh.hops {
		if v.sendCoded(sh, h, sh.wire) {
			v.tel.tx.Inc(sh.idx + 1)
			v.tel.forwarded.Inc(sh.idx + 1)
		}
	}
}

// sendCoded transmits one wire-format packet from a shard: straight
// through the conn, or into the shard's tx coalescing ring when batching
// is on. It reports whether the packet was accepted for transmission
// (coalesced packets count at enqueue; their flush follows datagram
// semantics).
func (v *VNF) sendCoded(sh *vnfShard, dst string, wire []byte) bool {
	if sh.txc != nil {
		sh.txc.add(dst, wire)
		return true
	}
	return v.conn.Send(dst, wire) == nil
}

// recode implements the pipelined intermediate VNF of Sec. III-B2.
func (v *VNF) recode(sh *vnfShard, st *sessionState, p *ncproto.Packet) {
	key := buffer.GenKey{Session: p.Session, Generation: p.Generation}
	cb := rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload}

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		v.dropPkt(sh.idx+1, p.Session, p.Generation, 1)
		return
	}
	if st.evicted[p.Generation] {
		// Late packet for an evicted generation: count it and drop it; the
		// state machine never resurrects evicted coding state.
		st.mu.Unlock()
		v.tel.evictedDrops.Inc(sh.idx + 1)
		v.dropPkt(sh.idx+1, p.Session, p.Generation, 1)
		return
	}
	if p.Generation > st.maxGen {
		st.maxGen = p.Generation
	}
	rec, ok := st.recoders[p.Generation]
	if !ok {
		if v.draining.Load() {
			// Drain admission gate: recoding this packet would create
			// coding state for a new generation. Refuse it so the drain
			// converges; in-flight generations above keep flushing.
			st.mu.Unlock()
			v.refuseDrainAdmission(sh.idx+1, p.Session, p.Generation, 1)
			return
		}
		rec = st.takeRecoder(v, st.nextSeed)
		if rec == nil {
			var err error
			rec, err = rlnc.NewRecoder(st.cfg.Params, st.nextSeed)
			if err != nil {
				st.mu.Unlock()
				v.dropPkt(sh.idx+1, p.Session, p.Generation, 1)
				return
			}
		}
		st.nextSeed++
		st.recoders[p.Generation] = rec
	}
	uselessBefore := rec.Useless()
	if err := rec.Add(cb); err != nil {
		st.mu.Unlock()
		v.dropPkt(sh.idx+1, p.Session, p.Generation, 1)
		return
	}
	if rec.Useless() > uselessBefore {
		// The coefficient gate dropped the arrival as linearly dependent:
		// it consumed upstream capacity without adding information.
		v.tel.dependent(st.cfg.Params.Field).Inc(sh.idx + 1)
	}
	// Track the generation in the shared buffer: it provides per-generation
	// counting and FIFO capacity management, while the coded state itself
	// lives in the recoder's rank-limited basis (no payload retained
	// twice). When the buffer evicts a generation we drop the recoder state
	// too.
	count := v.buf.Track(key)
	for gid := range st.recoders {
		gk := buffer.GenKey{Session: p.Session, Generation: gid}
		if !v.buf.Contains(gk) {
			st.cacheRecoder(v, st.recoders[gid])
			delete(st.recoders, gid)
			delete(st.emitted, gid)
			delete(st.received, gid)
			if v.store != nil {
				v.store.remove(gk, &v.tel)
			}
		}
	}
	if v.store != nil {
		v.store.touch(st, key, st.stateBytes, v.clock.Now().UnixNano(), &v.tel)
	}

	st.received[p.Generation]++
	n := st.received[p.Generation]
	k := st.cfg.Params.GenerationBlocks
	inPerGen := st.cfg.InPerGen
	if inPerGen <= 0 {
		inPerGen = k
	}
	def := k + st.cfg.Redundancy

	sh.groups = v.table.AppendGroups(sh.groups[:0], p.Session)
	groups := sh.groups
	if len(groups) == 0 {
		st.mu.Unlock()
		return
	}
	counters := st.emitted[p.Generation]
	if len(counters) != len(groups) {
		// Table changed shape (controller update); restart pacing state.
		counters = make([]int, len(groups))
	}

	// Pipelined per-hop emission: packets are emitted immediately as
	// arrivals come in, paced so a full generation's worth of arrivals
	// produces exactly quota_h packets on hop h.
	//
	// The pacing schedule depends on whether the hop compresses or
	// amplifies the flow. A compressing hop (quota < inbound — a merge
	// node like T in the butterfly, which folds two branches into one
	// link) must back-load its emissions: an early emission could only mix
	// packets of whichever branch happened to arrive first and would carry
	// no innovation for the receiver behind that branch. An amplifying or
	// neutral hop emits proportionally, i.e. on every arrival.
	//
	// Emissions are built into the shard's reusable blocks (sh.emCB grows
	// to the high-water mark and is then recycled), so the steady state
	// allocates nothing.
	sh.emDst = sh.emDst[:0]
	nem := 0
	firstUsed := false
	for gi, h := range groups {
		dst := h.Pick(p.Session, p.Generation)
		if dst == "" {
			continue
		}
		quota := h.quota(def)
		var target int
		if quota <= inPerGen {
			target = n - (inPerGen - quota)
			if target < 0 {
				target = 0
			}
		} else {
			target = n * quota / inPerGen
		}
		if target > counters[gi] {
			for i := counters[gi]; i < target; i++ {
				if nem == len(sh.emCB) {
					sh.emCB = append(sh.emCB, rlnc.CodedBlock{})
				}
				out := &sh.emCB[nem]
				if count == 1 && !firstUsed {
					// First packet of its generation: forward as-is
					// (Sec. III-B2).
					firstUsed = true
					out.Coeffs = append(out.Coeffs[:0], cb.Coeffs...)
					out.Payload = append(out.Payload[:0], cb.Payload...)
				} else if !rec.RecodeInto(out) {
					continue
				}
				sh.emDst = append(sh.emDst, dst)
				nem++
			}
			counters[gi] = target
		}
	}
	st.emitted[p.Generation] = counters
	// The recoder's work meter covers both the raw-row insert (one payload
	// copy, coefficient-gated) and the fused gather behind each emission.
	work := rec.TakeWork()
	st.mu.Unlock()

	if work > 0 {
		v.chargeCodingCost(int(work))
	}
	for i := 0; i < nem; i++ {
		outPkt := ncproto.Packet{
			Session:    p.Session,
			Generation: p.Generation,
			Coeffs:     sh.emCB[i].Coeffs,
			Payload:    sh.emCB[i].Payload,
		}
		sh.wire = outPkt.Encode(sh.wire)
		if v.sendCoded(sh, sh.emDst[i], sh.wire) {
			v.tel.tx.Inc(sh.idx + 1)
			v.tel.recoded.Inc(sh.idx + 1)
			st.pktsOut.Add(1)
		}
	}
}

// decodeBatch implements the receiver-side function for a run of packets
// belonging to one generation. A single-element batch reproduces the old
// per-packet decode exactly; deeper batches amortize lock traffic and let
// the deferred-elimination engine (Decoder.AddBatch) skip per-packet
// back-substitution. Coding CPU is charged from the decoder's own work
// meter, so the end-of-generation blocked inverse + fused multiply is paid
// when it actually runs.
func (v *VNF) decodeBatch(cell int, st *sessionState, sess ncproto.SessionID, gen ncproto.GenerationID, batch []rlnc.CodedBlock) {
	if len(batch) == 0 {
		return
	}
	st.mu.Lock()
	if st.delivered[gen] {
		st.mu.Unlock()
		return
	}
	if st.closed {
		st.mu.Unlock()
		v.dropPkt(cell, sess, gen, len(batch))
		return
	}
	if st.evicted[gen] {
		// Late packets for an evicted generation: counted as drops, never
		// resurrected.
		st.mu.Unlock()
		v.tel.evictedDrops.Add(cell, uint64(len(batch)))
		v.dropPkt(cell, sess, gen, len(batch))
		return
	}
	if gen > st.maxGen {
		st.maxGen = gen
	}
	dec, ok := st.decoders[gen]
	if !ok {
		if v.draining.Load() {
			// Drain admission gate (see recode): no new per-generation
			// decoder state while draining.
			st.mu.Unlock()
			v.refuseDrainAdmission(cell, sess, gen, len(batch))
			return
		}
		dec = st.takeDecoder(v)
		if dec == nil {
			var err error
			dec, err = rlnc.NewDecoder(st.cfg.Params)
			if err != nil {
				st.mu.Unlock()
				v.dropPkt(cell, sess, gen, len(batch))
				return
			}
		}
		st.decoders[gen] = dec
		st.started[gen] = v.clock.Now().UnixNano()
	}
	if v.store != nil {
		v.store.touch(st, buffer.GenKey{Session: sess, Generation: gen},
			st.stateBytes, v.clock.Now().UnixNano(), &v.tel)
	}
	innovative, err := dec.AddBatch(batch)
	if err != nil {
		st.mu.Unlock()
		v.dropPkt(cell, sess, gen, len(batch))
		return
	}
	if dep := len(batch) - innovative; dep > 0 {
		v.tel.dependent(st.cfg.Params.Field).Add(cell, uint64(dep))
	}
	if innovative > 0 {
		v.tel.rec.Record(v.clock.Now().UnixNano(), telemetry.EventRankAdvance, v.node,
			uint64(sess), uint64(gen), int64(dec.Rank()))
	}
	if !dec.Complete() {
		work := dec.TakeWork()
		st.mu.Unlock()
		v.chargeCodingCost(int(work))
		return
	}
	data, err := dec.Generation()
	if err != nil {
		work := dec.TakeWork()
		st.mu.Unlock()
		v.chargeCodingCost(int(work))
		return
	}
	st.delivered[gen] = true
	delete(st.decoders, gen)
	st.cacheDecoder(v, dec)
	if v.store != nil {
		v.store.remove(buffer.GenKey{Session: sess, Generation: gen}, &v.tel)
	}
	startNs, timed := st.started[gen]
	delete(st.started, gen)
	// Prune stale decoder state: generations far behind the newest one
	// will never complete (their packets are gone), and the delivered set
	// only needs to cover the reordering window.
	const window = 4096
	if len(st.delivered) > 2*window || len(st.decoders) > 2*window {
		for gid := range st.delivered {
			if gid+window < gen {
				delete(st.delivered, gid)
			}
		}
		for gid := range st.decoders {
			if gid+window < gen {
				delete(st.decoders, gid)
				if v.store != nil {
					v.store.remove(buffer.GenKey{Session: sess, Generation: gid}, &v.tel)
				}
			}
		}
		for gid := range st.started {
			if gid+window < gen {
				delete(st.started, gid)
			}
		}
		for gid := range st.evicted {
			if gid+window < gen {
				delete(st.evicted, gid)
			}
		}
	}
	work := dec.TakeWork() // includes the blocked inverse + multiply
	st.mu.Unlock()
	v.chargeCodingCost(int(work))

	nowNs := v.clock.Now().UnixNano()
	var latency int64
	if timed {
		latency = nowNs - startNs
		v.tel.decodeNs.Observe(latency)
	}
	v.tel.rec.Record(nowNs, telemetry.EventGenerationDecode, v.node,
		uint64(sess), uint64(gen), latency)
	v.tel.gens.Inc(cell)
	st.done.Add(1)
	select {
	case v.deliveries <- Delivery{Session: sess, Generation: gen, Data: data}:
	default:
		// Application not draining; drop oldest behavior is up to it.
	}
}
