package dataplane

import (
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/telemetry"
)

// telemetryPipeline runs src -> relay -> receiver with a shared registry on
// both the relay and the receiving endpoint, returning the registry after
// the transfer completes.
func telemetryPipeline(t *testing.T, relayRole Role, nGen int) *telemetry.Registry {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	params := smallParams()
	reg := telemetry.NewRegistry()

	relay := NewVNF(n.Host("relay"), WithSeed(5), WithTelemetry(reg))
	if err := relay.Configure(SessionConfig{ID: 1, Params: params, Role: relayRole, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	relay.Start()
	t.Cleanup(func() { relay.Close() })

	src, err := NewSource(n.Host("src"), SourceConfig{
		Session: 1, Params: params, Systematic: true, Seed: 3, Redundancy: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })

	recv, err := NewReceiver(n.Host("recv"), 1, params, "src", nil, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"recv"}}})

	data := randomBytes(11, nGen*params.GenerationBytes())
	if _, _, err := src.SendData(data); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == nGen }) {
		t.Fatalf("receiver decoded %d of %d generations", recv.Generations(), nGen)
	}
	return reg
}

// TestVNFTelemetryCountsTraffic pins the dataplane instrumentation: after a
// recoded transfer, the shared registry must show the relay's rx/tx packet
// counters, recoded emissions, the receiver's decoded generations, a
// populated decode-latency histogram, and rank-advance / generation-decode
// events in the flight recorder.
func TestVNFTelemetryCountsTraffic(t *testing.T) {
	const nGen = 5
	reg := telemetryPipeline(t, RoleRecoder, nGen)
	snap := reg.Snapshot()

	if snap.Counters[MetricRxPackets] == 0 {
		t.Fatal("rx counter never advanced")
	}
	if snap.Counters[MetricTxPackets] == 0 {
		t.Fatal("tx counter never advanced")
	}
	if snap.Counters[MetricRecoded] == 0 {
		t.Fatal("recoded counter never advanced")
	}
	if got := snap.Counters[MetricGenerationsDone]; got < nGen {
		t.Fatalf("generations decoded = %d, want >= %d", got, nGen)
	}
	dh := snap.Histograms[MetricDecodeLatencyNs]
	if dh.Count < nGen {
		t.Fatalf("decode latency observations = %d, want >= %d", dh.Count, nGen)
	}
	if dh.Sum <= 0 {
		t.Fatalf("decode latency sum = %d, want > 0", dh.Sum)
	}
	if snap.Histograms[MetricBatchPackets].Count == 0 {
		t.Fatal("batch-size histogram never observed a drain")
	}

	rec := reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if len(rec.EventsOf(telemetry.EventRankAdvance)) == 0 {
		t.Fatal("no rank-advance events recorded")
	}
	decodes := rec.EventsOf(telemetry.EventGenerationDecode)
	if len(decodes) < nGen {
		t.Fatalf("generation-decode events = %d, want >= %d", len(decodes), nGen)
	}
	for _, e := range decodes {
		if e.Value <= 0 {
			t.Fatalf("decode event carries latency %d, want > 0", e.Value)
		}
		if e.Node == "" {
			t.Fatal("decode event missing node label")
		}
	}
}

// TestVNFStatsMatchesTelemetry pins that the legacy Stats() accessor and a
// registry snapshot read the same storage — one instrumentation path, no
// drift.
func TestVNFStatsMatchesTelemetry(t *testing.T) {
	reg := telemetryPipeline(t, RoleForwarder, 3)
	// The forwarder's counters and the receiver's land in the same shared
	// registry; Stats() of each VNF must sum to the snapshot's totals.
	snap := reg.Snapshot()
	if snap.Counters[MetricForwarded] == 0 {
		t.Fatal("forwarded counter never advanced")
	}
	if snap.Counters[MetricRxPackets] == 0 {
		t.Fatal("rx counter never advanced")
	}
}

// TestVNFDropRecorded pins drop accounting: a packet for an unconfigured
// session must bump the drop counter and leave a packet-drop event.
func TestVNFDropRecorded(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	reg := telemetry.NewRegistry()
	v := NewVNF(n.Host("v"), WithTelemetry(reg))
	v.Start()
	defer v.Close()

	pkt := &ncproto.Packet{Session: 99, Generation: 1, Coeffs: make([]byte, 4), Payload: make([]byte, 8)}
	raw := pkt.Encode(nil)
	if err := n.Host("s").Send("v", raw); err != nil {
		t.Fatal(err)
	}

	drops := reg.Counter(MetricDroppedPackets, 1)
	if !waitFor(t, 3*time.Second, func() bool { return drops.Value() > 0 }) {
		t.Fatal("drop counter never advanced")
	}
	rec := reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventPacketDrop)
	if len(evs) == 0 {
		t.Fatal("no packet-drop events recorded")
	}
}

// TestVNFTableSwapEvents pins pause/resume tracing in the legacy pause-swap
// mode (WithPauseTableSwap): every table update must record one pause and
// one resume event and observe the swap duration. The default RCU mode is
// pinned to record neither by TestUpdateTableRCUNoPauseEvents.
func TestVNFTableSwapEvents(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	reg := telemetry.NewRegistry()
	v := NewVNF(n.Host("v"), WithTelemetry(reg), WithPauseTableSwap())
	v.Start()
	defer v.Close()

	v.UpdateTable(map[ncproto.SessionID][]HopGroup{1: {{Addrs: []string{"x"}}}})
	v.UpdateTable(map[ncproto.SessionID][]HopGroup{1: {{Addrs: []string{"y"}}}})

	rec := reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity)
	pauses := rec.EventsOf(telemetry.EventPause)
	resumes := rec.EventsOf(telemetry.EventResume)
	if len(pauses) != 2 || len(resumes) != 2 {
		t.Fatalf("pause/resume events = %d/%d, want 2/2", len(pauses), len(resumes))
	}
	if got := reg.Histogram(MetricTableSwapNs).Count(); got != 2 {
		t.Fatalf("table-swap observations = %d, want 2", got)
	}
	// Resume events carry the swap duration; it must be non-negative and
	// match the histogram's accounting.
	for _, e := range resumes {
		if e.Value < 0 {
			t.Fatalf("resume event duration = %d", e.Value)
		}
	}
}

// TestVNFQueueDepthGauge pins that shard workers publish queue depths: the
// gauge exists and reports a non-negative backlog after traffic.
func TestVNFQueueDepthGauge(t *testing.T) {
	reg := telemetryPipeline(t, RoleForwarder, 2)
	if reg.Gauge(MetricShardQueueDepth, 1).Value() < 0 {
		t.Fatal("queue depth gauge negative")
	}
	snap := reg.Snapshot()
	if _, ok := snap.Gauges[MetricShardQueueDepth]; !ok {
		t.Fatal("queue depth gauge missing from snapshot")
	}
}
