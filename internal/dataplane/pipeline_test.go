package dataplane

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// TestPipelineMultiSessionButterflyRace drives several sessions through the
// sharded butterfly at once while the control plane churns: forwarding
// tables are re-pushed (pause/resume on every shard) and one session is
// torn down mid-flight. Run under -race this exercises every lock on the
// packet path; the functional assertion is that the surviving sessions
// still decode.
func TestPipelineMultiSessionButterflyRace(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	sessions := []ncproto.SessionID{1, 2, 3, 4}
	const endedSession = ncproto.SessionID(3)

	hopsFor := func(relay string, s ncproto.SessionID) []HopGroup {
		suffix := fmt.Sprintf("-s%d", s)
		switch relay {
		case "O1":
			return []HopGroup{
				{Addrs: []string{"O2" + suffix}, PerGen: 2},
				{Addrs: []string{"T"}, PerGen: 2},
			}
		case "C1":
			return []HopGroup{
				{Addrs: []string{"C2" + suffix}, PerGen: 2},
				{Addrs: []string{"T"}, PerGen: 2},
			}
		case "T":
			return []HopGroup{{Addrs: []string{"V2"}, PerGen: 2}}
		case "V2":
			return []HopGroup{
				{Addrs: []string{"O2" + suffix}, PerGen: 2},
				{Addrs: []string{"C2" + suffix}, PerGen: 2},
			}
		}
		t.Fatalf("unknown relay %q", relay)
		return nil
	}

	relays := make(map[string]*VNF)
	for i, name := range []string{"O1", "C1", "T", "V2"} {
		inPerGen := 2
		if name == "T" {
			inPerGen = 4
		}
		v := NewVNF(n.Host(name), WithSeed(int64(101+i)), WithWorkers(4))
		for _, s := range sessions {
			if err := v.Configure(SessionConfig{ID: s, Params: params, Role: RoleRecoder, InPerGen: inPerGen}); err != nil {
				t.Fatal(err)
			}
			v.Table().Set(s, hopsFor(name, s))
		}
		v.Start()
		t.Cleanup(func() { v.Close() })
		relays[name] = v
	}

	type rx struct {
		s    ncproto.SessionID
		o, c *Receiver
	}
	var receivers []rx
	for _, s := range sessions {
		suffix := fmt.Sprintf("-s%d", s)
		o, err := NewReceiver(n.Host("O2"+suffix), s, params, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		c, err := NewReceiver(n.Host("C2"+suffix), s, params, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		receivers = append(receivers, rx{s: s, o: o, c: c})
	}

	const ngen = 10
	genBytes := params.GenerationBytes()
	data := make(map[ncproto.SessionID][]byte)
	var wg sync.WaitGroup
	stopChurn := make(chan struct{})

	// Control-plane churn: re-push each relay's table (same content, full
	// pause/resume on every shard) while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			for name, v := range relays {
				entries := make(map[ncproto.SessionID][]HopGroup)
				for _, s := range sessions {
					entries[s] = hopsFor(name, s)
				}
				v.UpdateTable(entries)
				v.Stats()
				v.SessionStatsFor(sessions[0])
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Tear one session down mid-flight at the merge node.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		relays["T"].EndSession(endedSession)
	}()

	for _, s := range sessions {
		data[s] = randomBytes(int64(300+int(s)), ngen*genBytes)
	}
	for _, s := range sessions {
		s, payload := s, data[s]
		src, err := NewSource(n.Host(fmt.Sprintf("V1-s%d", s)), SourceConfig{
			Session: s, Params: params, Systematic: true, Seed: int64(7 + int(s)),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { src.Close() })
		src.SetHops([]HopGroup{
			{Addrs: []string{"O1"}, PerGen: 2},
			{Addrs: []string{"C1"}, PerGen: 2},
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, sent, err := src.SendData(payload); err != nil || sent != ngen {
				t.Errorf("session %d: sent %d generations, err %v", s, sent, err)
			}
		}()
	}

	// Surviving sessions must decode (allow the same small linear-dependency
	// slack as the single-session butterfly test).
	ok := waitFor(t, 15*time.Second, func() bool {
		for _, r := range receivers {
			if r.s == endedSession {
				continue
			}
			if r.o.Generations() < ngen-2 || r.c.Generations() < ngen-2 {
				return false
			}
		}
		return true
	})
	close(stopChurn)
	wg.Wait()
	if !ok {
		for _, r := range receivers {
			t.Logf("session %d: O2=%d C2=%d of %d", r.s, r.o.Generations(), r.c.Generations(), ngen)
		}
		t.Fatal("surviving sessions did not decode through the sharded pipeline")
	}
	for _, r := range receivers {
		if r.s == endedSession {
			continue
		}
		for _, recv := range []*Receiver{r.o, r.c} {
			for g := 0; g < ngen; g++ {
				got, ok := recv.GenerationData(ncproto.GenerationID(g))
				if !ok {
					continue
				}
				if !bytes.Equal(got, data[r.s][g*genBytes:(g+1)*genBytes]) {
					t.Fatalf("session %d generation %d content mismatch", r.s, g)
				}
			}
		}
	}
}

// TestVNFPacketPathZeroAlloc pins the tentpole's allocation claim end to
// end: once a generation's coding state and the shard scratch are warm, a
// recoder VNF processes and re-emits a packet with zero heap allocations —
// header peek, session lookup, single-pass decode, basis update, buffer
// tracking, recoded emission, wire encode, and the pooled emunet send.
func TestVNFPacketPathZeroAlloc(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	n.Host("sink") // exists so sends are routable; its inbox is never drained
	v := NewVNF(n.Host("v"), WithSeed(9), WithWorkers(1))
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})

	enc, err := rlnc.NewEncoder(params, randomBytes(1, params.GenerationBytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([][]byte, 8)
	for i := range pkts {
		cb := enc.Coded()
		pkts[i] = (&ncproto.Packet{
			Session: 1, Generation: 5, Coeffs: cb.Coeffs, Payload: cb.Payload,
		}).Encode(nil)
	}
	// Warm up past the sink's inbox capacity so the emulated network reaches
	// its steady state (every delivery recycles a pooled buffer) and all
	// per-generation state and shard scratch exist.
	for i := 0; i < 5000; i++ {
		v.handlePacket(pkts[i%len(pkts)], "src")
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		v.handlePacket(pkts[i%len(pkts)], "src")
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state packet path allocated %.1f times per packet, want 0", allocs)
	}
}

// benchConn is an in-memory PacketConn that serves a pre-encoded packet
// ring to Recv and counts (then discards) sends, so VNF benchmarks measure
// coding-path cost without network emulation overhead.
type benchConn struct {
	pkts  [][]byte
	limit int64
	next  atomic.Int64
	sent  atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

func newBenchConn(pkts [][]byte, limit int64) *benchConn {
	return &benchConn{pkts: pkts, limit: limit, closed: make(chan struct{})}
}

func (c *benchConn) Recv() ([]byte, string, error) {
	i := c.next.Add(1) - 1
	if i >= c.limit {
		<-c.closed // hold the receive loop open until the VNF closes
		return nil, "", emunet.ErrClosed
	}
	return c.pkts[i%int64(len(c.pkts))], "bench", nil
}

func (c *benchConn) Send(string, []byte) error {
	c.sent.Add(1)
	return nil
}

func (c *benchConn) LocalAddr() string { return "bench" }

func (c *benchConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// benchRing pre-encodes a ring of packets across several sessions,
// interleaved so consecutive arrivals land on different shards.
func benchRing(b *testing.B, params rlnc.Params, sessions, gens int) [][]byte {
	b.Helper()
	k := params.GenerationBlocks
	perSession := make([][][]byte, sessions)
	for s := 0; s < sessions; s++ {
		for g := 0; g < gens; g++ {
			enc, err := rlnc.NewEncoder(params, randomBytes(int64(1000+s*gens+g), params.GenerationBytes()), int64(s*gens+g))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < k; i++ {
				cb := enc.Coded()
				perSession[s] = append(perSession[s], (&ncproto.Packet{
					Session:    ncproto.SessionID(s + 1),
					Generation: ncproto.GenerationID(g),
					Coeffs:     cb.Coeffs,
					Payload:    cb.Payload,
				}).Encode(nil))
			}
		}
	}
	var ring [][]byte
	for i := 0; i < gens*k; i++ {
		for s := 0; s < sessions; s++ {
			ring = append(ring, perSession[s][i])
		}
	}
	return ring
}

func benchVNF(b *testing.B, conn emunet.PacketConn, params rlnc.Params, sessions, workers int) *VNF {
	b.Helper()
	v := NewVNF(conn, WithSeed(77), WithWorkers(workers))
	for s := 0; s < sessions; s++ {
		id := ncproto.SessionID(s + 1)
		if err := v.Configure(SessionConfig{ID: id, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
			b.Fatal(err)
		}
		v.Table().Set(id, []HopGroup{{Addrs: []string{"sink"}}})
	}
	return v
}

// BenchmarkVNFPipeline measures single-VNF recode throughput with traffic
// spread across concurrent sessions: the serial baseline processes every
// packet inline on one goroutine (the seed data plane's structure), the
// sharded variants run the receive-dispatch pipeline with 1 and 4 workers.
// Bytes/op is coded payload through the VNF.
func BenchmarkVNFPipeline(b *testing.B) {
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 1460}
	const sessions = 8
	ring := benchRing(b, params, sessions, 8)

	b.Run("serial", func(b *testing.B) {
		conn := newBenchConn(ring, 0)
		v := benchVNF(b, conn, params, sessions, 1)
		b.SetBytes(int64(params.BlockSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.handlePacket(ring[i%len(ring)], "bench")
		}
	})

	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			conn := newBenchConn(ring, int64(b.N))
			v := benchVNF(b, conn, params, sessions, workers)
			b.SetBytes(int64(params.BlockSize))
			b.ResetTimer()
			v.Start()
			// Wait until every served packet has been processed by a shard.
			target := uint64(b.N)
			for {
				var done uint64
				for s := 0; s < sessions; s++ {
					if st, ok := v.SessionStatsFor(ncproto.SessionID(s + 1)); ok {
						done += st.PacketsIn
					}
				}
				if done >= target {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			v.Close()
		})
	}
}
