package dataplane

import (
	"ncfn/internal/ncproto"
)

// This file implements the modular-VNF direction the paper's conclusion
// proposes: "Modularizing the system design is a possible future direction
// to explore, so that our system can directly support a broad range of
// application scenarios beyond network coding, once the network coding
// related modules are replaced by other application-specific modules."
//
// A Function is an application-specific per-session packet module. The VNF
// keeps providing packet I/O, session configuration, forwarding tables, and
// the control-plane lifecycle; the Function decides what to emit for each
// arrival. The built-in recoder/decoder/forwarder roles remain the network
// coding instances of this idea.

// Emitter sends a packet to one next-hop address.
type Emitter func(dst string, pkt *ncproto.Packet)

// Function is a pluggable per-session packet module hosted by a VNF.
// Implementations run under the VNF's processing lock and must not block.
type Function interface {
	// OnPacket handles one arriving NC packet. hops are the next-hop
	// instance addresses selected from the forwarding table for the
	// packet's generation; emit forwards a (possibly transformed) packet.
	OnPacket(p *ncproto.Packet, hops []string, emit Emitter)
}

// RoleCustom marks a session as handled by a custom Function.
const RoleCustom Role = 99

// ConfigureFunction installs a custom packet function for a session,
// replacing any prior configuration. The params still describe the wire
// format (coefficient count) so packets parse.
func (v *VNF) ConfigureFunction(cfg SessionConfig, fn Function) error {
	if fn == nil {
		return errNilFunction
	}
	base := cfg
	base.Role = RoleForwarder // validate with a stock role, then override
	if err := v.Configure(base); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	st := v.sessions[cfg.ID]
	st.cfg.Role = RoleCustom
	st.custom = fn
	return nil
}

var errNilFunction = errorString("dataplane: nil custom function")

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

// runCustom dispatches one packet to the session's Function.
func (v *VNF) runCustom(sh *vnfShard, st *sessionState, p *ncproto.Packet) {
	hops := v.table.NextHops(p.Session, p.Generation)
	emitted := false
	st.custom.OnPacket(p, hops, func(dst string, out *ncproto.Packet) {
		wire := out.Encode(nil)
		if v.sendCoded(sh, dst, wire) {
			v.tel.tx.Inc(sh.idx + 1)
			emitted = true
		}
	})
	if emitted {
		v.tel.forwarded.Inc(sh.idx + 1)
	}
}
