package dataplane

import (
	"container/list"
	"sync"

	"ncfn/internal/buffer"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

// SessionStoreConfig bounds the per-VNF coding state under massive
// multi-tenancy. With thousands of concurrent sessions, per-generation
// decoder and recoder state is the dominant memory consumer; the store
// tracks every live (session, generation) in LRU order and evicts stale
// generations when any configured bound is exceeded. A zero value in any
// field disables that bound.
type SessionStoreConfig struct {
	// MaxGenerations caps live (session, generation) coding states across
	// the whole VNF. The least recently touched generation is evicted first.
	MaxGenerations int
	// TTLNanos evicts any generation not touched by a packet for this many
	// clock nanoseconds (the VNF's clock, so the chaos harness drives it
	// with virtual time).
	TTLNanos int64
	// MaxBytes caps the estimated coding-state bytes
	// (rlnc.Params.StateBytes per live generation).
	MaxBytes int64
}

// enabled reports whether any bound is configured.
func (c SessionStoreConfig) enabled() bool {
	return c.MaxGenerations > 0 || c.TTLNanos > 0 || c.MaxBytes > 0
}

// WithSessionStore bounds the VNF's per-session coding state. Without this
// option the VNF keeps its historical behavior: decoder state pruned only by
// the reordering window, recoder state only by generation-buffer FIFO
// capacity, and no memory accounting.
func WithSessionStore(cfg SessionStoreConfig) VNFOption {
	return func(v *VNF) {
		if cfg.enabled() {
			v.store = &sessionStore{
				cfg:     cfg,
				entries: make(map[buffer.GenKey]*genEntry),
				lru:     list.New(),
			}
		}
	}
}

// genEntry is one live (session, generation) coding state tracked by the
// store.
type genEntry struct {
	key    buffer.GenKey
	st     *sessionState
	bytes  int64
	lastNs int64
	elem   *list.Element
}

// sessionStore is the VNF's bounded index of live generation state. It is
// deliberately decoupled from the per-session locks: touch/remove take only
// store.mu (callers already hold their session's st.mu), while eviction
// enforcement collects victims under store.mu, releases it, and then
// applies each eviction under that victim's st.mu. Enforcement therefore
// runs only from call sites that hold no session lock (the shard worker
// loop between runs, and SweepSessions).
//
// The declared acquisition order below is the package contract nclint's
// lockorder analyzer enforces: a shard's pauseMu is outermost, a session's
// mu next, and store.mu innermost — never take an earlier lock while
// holding a later one.
//
//nc:lockorder vnfShard.pauseMu -> sessionState.mu -> sessionStore.mu
type sessionStore struct {
	cfg SessionStoreConfig

	mu      sync.Mutex
	entries map[buffer.GenKey]*genEntry
	lru     *list.List // front = least recently touched
	bytes   int64
	victims []*genEntry // enforcement scratch, reused under mu
}

// touch marks (key → st) live with the given footprint estimate, inserting
// or refreshing its LRU position. Callers hold st.mu.
func (s *sessionStore) touch(st *sessionState, key buffer.GenKey, bytes int64, nowNs int64, tel *vnfTelemetry) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &genEntry{key: key, st: st, bytes: bytes, lastNs: nowNs}
		e.elem = s.lru.PushBack(e)
		s.entries[key] = e
		s.bytes += bytes
		s.mu.Unlock()
		tel.sessBytes.Add(0, bytes)
		tel.liveGens.Add(0, 1)
		return
	}
	if e.st != st {
		// The session was reconfigured (revived) while an old entry for the
		// same generation still existed; track the new state object.
		e.st = st
	}
	if delta := bytes - e.bytes; delta != 0 {
		e.bytes = bytes
		s.bytes += delta
		s.lru.MoveToBack(e.elem)
		e.lastNs = nowNs
		s.mu.Unlock()
		tel.sessBytes.Add(0, delta)
		return
	}
	e.lastNs = nowNs
	s.lru.MoveToBack(e.elem)
	s.mu.Unlock()
}

// remove forgets a generation (delivered, pruned, or dropped by the caller)
// and returns whether it was tracked. Callers hold st.mu or no session lock.
func (s *sessionStore) remove(key buffer.GenKey, tel *vnfTelemetry) bool {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.lru.Remove(e.elem)
	delete(s.entries, key)
	s.bytes -= e.bytes
	s.mu.Unlock()
	tel.sessBytes.Add(0, -e.bytes)
	tel.liveGens.Add(0, -1)
	return true
}

// removeSession forgets every generation of one session (EndSession or a
// reconfiguration replacing the session state).
func (s *sessionStore) removeSession(id ncproto.SessionID, tel *vnfTelemetry) {
	s.mu.Lock()
	var freed int64
	var n int64
	for key, e := range s.entries {
		if key.Session != id {
			continue
		}
		s.lru.Remove(e.elem)
		delete(s.entries, key)
		s.bytes -= e.bytes
		freed += e.bytes
		n++
	}
	s.mu.Unlock()
	if n > 0 {
		tel.sessBytes.Add(0, -freed)
		tel.liveGens.Add(0, -n)
	}
}

// adjust accounts bytes that are retained outside live generations (the
// per-session codec free lists kept for arena reuse), so the
// dataplane_session_bytes gauge reflects everything the store holds onto.
func (s *sessionStore) adjust(delta int64, tel *vnfTelemetry) {
	s.mu.Lock()
	s.bytes += delta
	s.mu.Unlock()
	tel.sessBytes.Add(0, delta)
}

// collect pops eviction victims under store.mu: expired generations first
// (TTL), then LRU order while over the generation or byte caps. Victims are
// unlinked from the index immediately — their bytes leave the accounting
// here — and the caller applies the state teardown lock-free of store.mu.
func (s *sessionStore) collect(nowNs int64) []*genEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.victims = s.victims[:0]
	if s.cfg.TTLNanos > 0 {
		for {
			front := s.lru.Front()
			if front == nil {
				break
			}
			e := front.Value.(*genEntry)
			if nowNs-e.lastNs < s.cfg.TTLNanos {
				break
			}
			s.lru.Remove(front)
			delete(s.entries, e.key)
			s.bytes -= e.bytes
			s.victims = append(s.victims, e)
		}
	}
	for (s.cfg.MaxGenerations > 0 && len(s.entries) > s.cfg.MaxGenerations) ||
		(s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes) {
		front := s.lru.Front()
		if front == nil {
			break
		}
		e := front.Value.(*genEntry)
		s.lru.Remove(front)
		delete(s.entries, e.key)
		s.bytes -= e.bytes
		s.victims = append(s.victims, e)
	}
	if len(s.victims) == 0 {
		return nil
	}
	out := make([]*genEntry, len(s.victims))
	copy(out, s.victims)
	return out
}

// overLimit is the cheap pre-check the packet path uses to decide whether
// enforcement is worth running: one mutex acquisition, no allocation.
func (s *sessionStore) overLimit(nowNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxGenerations > 0 && len(s.entries) > s.cfg.MaxGenerations {
		return true
	}
	if s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes {
		return true
	}
	if s.cfg.TTLNanos > 0 {
		if front := s.lru.Front(); front != nil {
			if e := front.Value.(*genEntry); nowNs-e.lastNs >= s.cfg.TTLNanos {
				return true
			}
		}
	}
	return false
}

// enforceStore evicts stale generations until the store is within bounds.
// It must be called with no session mutex held: each victim's teardown
// takes that session's st.mu. Returns the number of generations evicted.
func (v *VNF) enforceStore() int {
	if v.store == nil {
		return 0
	}
	nowNs := v.clock.Now().UnixNano()
	if !v.store.overLimit(nowNs) {
		return 0
	}
	victims := v.store.collect(nowNs)
	for _, e := range victims {
		v.evictGeneration(e)
	}
	return len(victims)
}

// SweepSessions runs session-store eviction immediately and returns how many
// generations were evicted. The packet path enforces the store continuously;
// this entry point lets an idle VNF (no traffic to piggyback on) and the
// deterministic churn harness expire TTLs on demand.
func (v *VNF) SweepSessions() int { return v.enforceStore() }

// SessionStoreStats reports the store's live accounting: tracked generations
// and estimated retained bytes (live coding state plus pooled free-list
// arenas). Both are zero when no store is configured.
func (v *VNF) SessionStoreStats() (generations int, bytes int64) {
	if v.store == nil {
		return 0, 0
	}
	v.store.mu.Lock()
	defer v.store.mu.Unlock()
	return len(v.store.entries), v.store.bytes
}

// evictGeneration tears down one victim generation: drop its coding state
// (recycling the codec arenas into the session's free lists), tombstone the
// generation so late packets count as evicted drops instead of resurrecting
// state, and record the eviction.
func (v *VNF) evictGeneration(e *genEntry) {
	st, gen := e.st, e.key.Generation
	st.mu.Lock()
	if dec, ok := st.decoders[gen]; ok {
		delete(st.decoders, gen)
		delete(st.started, gen)
		st.cacheDecoder(v, dec)
	}
	if rec, ok := st.recoders[gen]; ok {
		delete(st.recoders, gen)
		delete(st.emitted, gen)
		delete(st.received, gen)
		st.cacheRecoder(v, rec)
	}
	if st.evicted == nil {
		st.evicted = make(map[ncproto.GenerationID]bool)
	}
	st.evicted[gen] = true
	// Tombstones only need to cover the reordering window: prune entries far
	// behind the newest generation this session has seen (same policy as the
	// delivered set, so a very late packet past the window is indistinguishable
	// from a new generation — accepted bound, documented in DESIGN.md).
	const window = 4096
	if len(st.evicted) > 2*window {
		maxGen := st.maxGen
		for gid := range st.evicted {
			if gid+window < maxGen {
				delete(st.evicted, gid)
			}
		}
	}
	st.mu.Unlock()

	v.buf.Drop(e.key)
	v.tel.evicted.Inc(0)
	v.tel.sessBytes.Add(0, -e.bytes)
	v.tel.liveGens.Add(0, -1)
	v.tel.rec.Record(v.clock.Now().UnixNano(), telemetry.EventGenerationEvict, v.node,
		uint64(e.key.Session), uint64(gen), e.bytes)
}

// freeListCap bounds how many finished codecs a session retains for arena
// reuse. One of each kind covers the steady state (sessions usually have one
// generation in flight) without letting thousands of idle sessions pin
// unbounded spare arenas.
const freeListCap = 1

// cacheDecoder resets a finished decoder and retains it for the session's
// next generation, or lets it go to GC if the free list is full, the session
// is closed, or no store is configured. Retained arenas are accounted on the
// session-bytes gauge. Callers hold st.mu.
func (st *sessionState) cacheDecoder(v *VNF, dec *rlnc.Decoder) {
	if v.store == nil || st.closed || len(st.freeDec) >= freeListCap {
		return
	}
	dec.Reset()
	st.freeDec = append(st.freeDec, dec)
	v.store.adjust(st.stateBytes, &v.tel)
}

// takeDecoder pops a recycled decoder, or returns nil if none is pooled.
// Callers hold st.mu.
func (st *sessionState) takeDecoder(v *VNF) *rlnc.Decoder {
	n := len(st.freeDec)
	if n == 0 {
		return nil
	}
	dec := st.freeDec[n-1]
	st.freeDec = st.freeDec[:n-1]
	v.store.adjust(-st.stateBytes, &v.tel)
	return dec
}

// cacheRecoder is cacheDecoder's recoder twin. The reset (and RNG reseed)
// happens at reuse time, when the session's next seed is drawn. Callers hold
// st.mu.
func (st *sessionState) cacheRecoder(v *VNF, rec *rlnc.Recoder) {
	if v.store == nil || st.closed || len(st.freeRec) >= freeListCap {
		return
	}
	st.freeRec = append(st.freeRec, rec)
	v.store.adjust(st.stateBytes, &v.tel)
}

// takeRecoder pops a recycled recoder reset with the given seed — bit-
// identical to rlnc.NewRecoder(params, seed), so recycling never changes
// emitted packets. Returns nil if none is pooled. Callers hold st.mu.
func (st *sessionState) takeRecoder(v *VNF, seed int64) *rlnc.Recoder {
	n := len(st.freeRec)
	if n == 0 {
		return nil
	}
	rec := st.freeRec[n-1]
	st.freeRec = st.freeRec[:n-1]
	rec.Reset(seed)
	v.store.adjust(-st.stateBytes, &v.tel)
	return rec
}

// releaseFreeLists drops a session's pooled codecs and returns the bytes to
// subtract from the store's accounting. Callers hold st.mu.
func (st *sessionState) releaseFreeLists() int64 {
	freed := int64(len(st.freeDec)+len(st.freeRec)) * st.stateBytes
	st.freeDec, st.freeRec = nil, nil
	return freed
}
