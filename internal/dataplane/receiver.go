package dataplane

import (
	"fmt"
	"sync"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
)

// MultiReceiver is a receiving endpoint that decodes any number of
// sessions arriving on one network address — the situation at a node that
// subscribes to several multicast sessions at once (e.g. a conference
// participant listening to every other speaker). It reassembles each
// session's byte stream in generation order, measures per-session goodput,
// and acknowledges each decoded generation directly back to that session's
// source (Sec. V-B2).
type MultiReceiver struct {
	vnf   *VNF
	clock simclock.Clock

	mu       sync.Mutex
	sessions map[ncproto.SessionID]*recvSession

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// recvSession is one session's reassembly state.
type recvSession struct {
	params     rlnc.Params
	srcAddr    string
	got        map[ncproto.GenerationID][]byte
	bytesDone  int
	firstReady *time.Time
	lastReady  *time.Time
}

// NewMultiReceiver builds a receiving endpoint on conn. Register sessions
// with AddSession before (or while) traffic flows.
func NewMultiReceiver(conn emunet.PacketConn, clk simclock.Clock, opts ...VNFOption) *MultiReceiver {
	if clk == nil {
		clk = simclock.Real{}
	}
	m := &MultiReceiver{
		vnf:      NewVNF(conn, opts...),
		clock:    clk,
		sessions: make(map[ncproto.SessionID]*recvSession),
		done:     make(chan struct{}),
	}
	m.vnf.Start()
	m.wg.Add(1)
	go m.collect()
	return m
}

// AddSession registers a session to decode. srcAddr, when non-empty, is
// where generation ACKs for the session are sent.
func (m *MultiReceiver) AddSession(id ncproto.SessionID, params rlnc.Params, srcAddr string) error {
	if err := m.vnf.Configure(SessionConfig{ID: id, Params: params, Role: RoleDecoder}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[id]; dup {
		return fmt.Errorf("dataplane: receiver already has session %d", id)
	}
	m.sessions[id] = &recvSession{
		params:  params,
		srcAddr: srcAddr,
		got:     make(map[ncproto.GenerationID][]byte),
	}
	return nil
}

// Addr returns the endpoint's network address.
func (m *MultiReceiver) Addr() string { return m.vnf.Addr() }

// VNF exposes the underlying decoder VNF (for stats).
func (m *MultiReceiver) VNF() *VNF { return m.vnf }

// collect drains decoded generations from the VNF into session state.
func (m *MultiReceiver) collect() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case d := <-m.vnf.Deliveries():
			now := m.clock.Now()
			m.mu.Lock()
			rs := m.sessions[d.Session]
			var srcAddr string
			if rs != nil {
				if _, dup := rs.got[d.Generation]; !dup {
					rs.got[d.Generation] = d.Data
					rs.bytesDone += len(d.Data)
					if rs.firstReady == nil {
						t := now
						rs.firstReady = &t
					}
					t := now
					rs.lastReady = &t
				}
				srcAddr = rs.srcAddr
			}
			m.mu.Unlock()
			if srcAddr != "" {
				ack := ncproto.EncodeAck(ncproto.Ack{Session: d.Session, Generation: d.Generation})
				// Best effort; ACK loss only delays reliability logic.
				_ = m.vnf.conn.Send(srcAddr, ack)
			}
		}
	}
}

// session fetches a session's state.
func (m *MultiReceiver) session(id ncproto.SessionID) *recvSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[id]
}

// Generations returns how many distinct generations of the session have
// been decoded.
func (m *MultiReceiver) Generations(id ncproto.SessionID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	if rs == nil {
		return 0
	}
	return len(rs.got)
}

// Bytes returns the session's decoded payload byte count.
func (m *MultiReceiver) Bytes(id ncproto.SessionID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	if rs == nil {
		return 0
	}
	return rs.bytesDone
}

// Data reassembles the session's generations 0..n-1 into a contiguous byte
// stream; it returns false if any generation in the range is missing.
func (m *MultiReceiver) Data(id ncproto.SessionID, n int) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	if rs == nil {
		return nil, false
	}
	out := make([]byte, 0, n*rs.params.GenerationBytes())
	for g := 0; g < n; g++ {
		d, ok := rs.got[ncproto.GenerationID(g)]
		if !ok {
			return nil, false
		}
		out = append(out, d...)
	}
	return out, true
}

// GenerationData returns the decoded payload of one generation, if
// complete.
func (m *MultiReceiver) GenerationData(id ncproto.SessionID, g ncproto.GenerationID) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	if rs == nil {
		return nil, false
	}
	d, ok := rs.got[g]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// MissingBelow lists the session's generations in [0, n) not yet decoded.
func (m *MultiReceiver) MissingBelow(id ncproto.SessionID, n int) []ncproto.GenerationID {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	var out []ncproto.GenerationID
	for g := 0; g < n; g++ {
		if rs == nil {
			out = append(out, ncproto.GenerationID(g))
			continue
		}
		if _, ok := rs.got[ncproto.GenerationID(g)]; !ok {
			out = append(out, ncproto.GenerationID(g))
		}
	}
	return out
}

// GoodputMbps returns the session's decoded payload throughput between its
// first and last completed generation.
func (m *MultiReceiver) GoodputMbps(id ncproto.SessionID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.sessions[id]
	if rs == nil || rs.firstReady == nil || rs.lastReady == nil {
		return 0
	}
	dt := rs.lastReady.Sub(*rs.firstReady).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(rs.bytesDone) * 8 / dt / 1e6
}

// Close stops the endpoint.
func (m *MultiReceiver) Close() error {
	var err error
	m.closeOnce.Do(func() {
		close(m.done)
		err = m.vnf.Close()
		m.wg.Wait()
	})
	return err
}

// Receiver is the single-session receiving endpoint: a view over a
// MultiReceiver carrying exactly one session. It remains the convenient
// handle for the common one-session-per-node case.
type Receiver struct {
	m  *MultiReceiver
	id ncproto.SessionID
}

// NewReceiver builds a receiver for one session on conn. srcAddr, when
// non-empty, is where generation ACKs are sent.
func NewReceiver(conn emunet.PacketConn, session ncproto.SessionID, params rlnc.Params, srcAddr string, clk simclock.Clock, opts ...VNFOption) (*Receiver, error) {
	m := NewMultiReceiver(conn, clk, opts...)
	if err := m.AddSession(session, params, srcAddr); err != nil {
		m.Close()
		return nil, err
	}
	return &Receiver{m: m, id: session}, nil
}

// View returns a single-session handle over a shared MultiReceiver. The
// session must already be registered. Closing a view closes the shared
// endpoint.
func (m *MultiReceiver) View(id ncproto.SessionID) (*Receiver, error) {
	if m.session(id) == nil {
		return nil, fmt.Errorf("dataplane: receiver has no session %d", id)
	}
	return &Receiver{m: m, id: id}, nil
}

// Addr returns the receiver's network address.
func (r *Receiver) Addr() string { return r.m.Addr() }

// VNF exposes the underlying decoder VNF (for stats).
func (r *Receiver) VNF() *VNF { return r.m.VNF() }

// Generations returns how many distinct generations have been decoded.
func (r *Receiver) Generations() int { return r.m.Generations(r.id) }

// Bytes returns the total decoded payload bytes.
func (r *Receiver) Bytes() int { return r.m.Bytes(r.id) }

// Data reassembles generations 0..n-1 into a contiguous byte stream; it
// returns false if any generation in the range is missing.
func (r *Receiver) Data(n int) ([]byte, bool) { return r.m.Data(r.id, n) }

// GenerationData returns the decoded payload of one generation, if
// complete.
func (r *Receiver) GenerationData(g ncproto.GenerationID) ([]byte, bool) {
	return r.m.GenerationData(r.id, g)
}

// MissingBelow lists the generations in [0, n) not yet decoded.
func (r *Receiver) MissingBelow(n int) []ncproto.GenerationID {
	return r.m.MissingBelow(r.id, n)
}

// GoodputMbps returns decoded payload throughput between the first and
// last completed generation.
func (r *Receiver) GoodputMbps() float64 { return r.m.GoodputMbps(r.id) }

// Close stops the receiver (and the shared endpoint, if this receiver is a
// view over one).
func (r *Receiver) Close() error { return r.m.Close() }
