package dataplane

import (
	"errors"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/telemetry"
)

// TestDrainLifecycle walks the drain state machine on an injection-driven
// recoder: Drain flips the gauge and refuses new session settings and new
// generations, while packets for generations admitted before the drain keep
// flowing; an idle pipeline then quiesces and latches.
func TestDrainLifecycle(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	reg := telemetry.NewRegistry()
	v := NewVNF(n.Host("dl-relay"), WithSeed(7), WithTelemetry(reg))
	defer v.Close()
	params := smallParams()
	if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	v.Table().Set(1, []HopGroup{{Addrs: []string{"dl-sink"}}})

	if v.DrainState() != DrainStateRunning || v.Draining() {
		t.Fatalf("fresh VNF not running: state %d", v.DrainState())
	}
	if v.WaitQuiesced(time.Millisecond) {
		t.Fatal("WaitQuiesced succeeded on a VNF that is not draining")
	}

	gen0 := codedWire(t, params, 1, 0, 11, params.GenerationBlocks+1)
	v.InjectPacket(gen0[0]) // creates generation-0 recoder state

	if !v.Drain() {
		t.Fatal("first Drain did not transition")
	}
	if v.Drain() {
		t.Fatal("second Drain transitioned again")
	}
	if v.DrainState() != DrainStateDraining {
		t.Fatalf("drain state %d, want draining", v.DrainState())
	}
	if got := reg.Gauge(MetricDrainState, 1).Value(); got != DrainStateDraining {
		t.Fatalf("drain gauge %d, want %d", got, DrainStateDraining)
	}
	if len(v.tel.rec.EventsOf(telemetry.EventDrainStart)) != 1 {
		t.Fatal("no drain_start flight event")
	}

	// New settings are refused while draining.
	err := v.Configure(SessionConfig{ID: 2, Params: params, Role: RoleDecoder})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Configure while draining: %v, want ErrDraining", err)
	}

	// Packets for the in-flight generation are still admitted...
	for _, w := range gen0[1:] {
		v.InjectPacket(w)
	}
	if got := reg.Counter(MetricDrainRefused, 1).Value(); got != 0 {
		t.Fatalf("in-flight generation refused %d packets", got)
	}
	st, _ := v.SessionStatsFor(1)
	if st.PacketsIn != uint64(len(gen0)) {
		t.Fatalf("in-flight generation stalled: %d of %d packets in", st.PacketsIn, len(gen0))
	}

	// ...but a packet that would create new generation state is refused.
	dropsBefore := v.Stats().PacketsDropped
	gen1 := codedWire(t, params, 1, 1, 12, 1)
	v.InjectPacket(gen1[0])
	if got := reg.Counter(MetricDrainRefused, 1).Value(); got != 1 {
		t.Fatalf("drain refused %d packets, want 1", got)
	}
	if got := v.Stats().PacketsDropped; got != dropsBefore+1 {
		t.Fatalf("refused packet not in drop accounting: %d, want %d", got, dropsBefore+1)
	}
	st, _ = v.SessionStatsFor(1)
	if st.GenerationsActive != 1 {
		t.Fatalf("refused packet created state: %d active generations", st.GenerationsActive)
	}

	// The injection-driven pipeline holds no queued work: it quiesces.
	if !v.WaitQuiesced(time.Second) {
		t.Fatal("idle draining VNF did not quiesce")
	}
	if v.DrainState() != DrainStateQuiesced {
		t.Fatalf("drain state %d, want quiesced", v.DrainState())
	}
	if got := reg.Gauge(MetricDrainState, 1).Value(); got != DrainStateQuiesced {
		t.Fatalf("drain gauge %d, want %d", got, DrainStateQuiesced)
	}
	ev := v.tel.rec.EventsOf(telemetry.EventDrainQuiesced)
	if len(ev) != 1 {
		t.Fatalf("%d drain_quiesced flight events, want 1", len(ev))
	}
	if ev[0].Value < 0 {
		t.Fatalf("drain_quiesced duration %d < 0", ev[0].Value)
	}
	// Quiescence latches.
	if !v.Quiesced() || len(v.tel.rec.EventsOf(telemetry.EventDrainQuiesced)) != 1 {
		t.Fatal("quiescence did not latch")
	}
}

// TestShutdownFlushesQueuedPackets is the clean-exit regression test over
// real UDP sockets: packets accepted into a shard queue (the worker is
// stalled under its pause lock to force a deterministic backlog) must all
// reach the next hop across Shutdown. A bare Close here would close the
// socket under the queued sends and lose them.
func TestShutdownFlushesQueuedPackets(t *testing.T) {
	const pkts = 128
	registry := emunet.NewRegistry()
	srcConn, err := emunet.ListenUDP("dr-src", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srcConn.Close()
	relayConn, err := emunet.ListenUDP("dr-relay", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	sinkConn, err := emunet.ListenUDP("dr-sink", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()

	params := smallParams()
	relay := NewVNF(relayConn, WithWorkers(1), WithTxCoalesce(8))
	if err := relay.Configure(SessionConfig{ID: 1, Params: params, Role: RoleForwarder}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"dr-sink"}}})
	relay.Start()

	// Stall the worker so every packet piles up in the shard queue (and,
	// once processing resumes, in the coalescer rings).
	// Failures while the lock is held are recorded and reported after the
	// single unlock below, so every path releases pauseMu exactly once.
	sh := relay.shardFor(1)
	sh.pauseMu.Lock()
	var sendErr error
	for gen := 0; gen < pkts && sendErr == nil; gen++ {
		w := codedWire(t, params, 1, ncproto.GenerationID(gen), int64(100+gen), 1)
		sendErr = srcConn.Send("dr-relay", w[0])
	}
	accepted := sendErr == nil &&
		waitFor(t, 10*time.Second, func() bool { return relay.Stats().PacketsIn >= pkts })

	type shutRes struct {
		quiesced bool
		err      error
	}
	done := make(chan shutRes, 1)
	go func() {
		q, err := relay.Shutdown(10 * time.Second)
		done <- shutRes{q, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the drain begin against the held lock
	sh.pauseMu.Unlock()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if !accepted {
		t.Fatalf("relay accepted %d of %d packets", relay.Stats().PacketsIn, pkts)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("shutdown: %v", res.err)
	}
	if !res.quiesced {
		t.Fatal("shutdown did not quiesce before its deadline")
	}

	// Recv has no deadline; a watchdog close bounds the count loop if
	// packets were lost.
	watchdog := time.AfterFunc(10*time.Second, func() { sinkConn.Close() })
	defer watchdog.Stop()
	got := 0
	for got < pkts {
		if _, _, err := sinkConn.Recv(); err != nil {
			break
		}
		got++
	}
	if got != pkts {
		t.Fatalf("sink received %d of %d packets across shutdown", got, pkts)
	}
	if fw := relay.Stats().Forwarded; fw != pkts {
		t.Fatalf("relay forwarded %d of %d", fw, pkts)
	}
}
