package dataplane

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

// captureConn records every Send in order; Recv is never used (tests drive
// the VNF through InjectPacket).
type captureConn struct {
	addr  string
	mu    sync.Mutex
	dsts  []string
	pkts  [][]byte
	close chan struct{}
	once  sync.Once
}

func newCaptureConn(addr string) *captureConn {
	return &captureConn{addr: addr, close: make(chan struct{})}
}

func (c *captureConn) Send(dst string, pkt []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dsts = append(c.dsts, dst)
	c.pkts = append(c.pkts, append([]byte(nil), pkt...))
	return nil
}

func (c *captureConn) Recv() ([]byte, string, error) {
	<-c.close
	return nil, "", emunet.ErrClosed
}

func (c *captureConn) LocalAddr() string { return c.addr }

func (c *captureConn) Close() error {
	c.once.Do(func() { close(c.close) })
	return nil
}

// TestTableRCUAtomicBatches pins snapshot atomicity: concurrent readers of a
// table being rewritten by whole-batch pushes must always observe one
// consistent version — every session pointing at the same generation of
// addresses — never a half-applied batch.
func TestTableRCUAtomicBatches(t *testing.T) {
	tab := NewForwardingTable()
	const sessions = 16
	push := func(tag string) {
		entries := map[ncproto.SessionID][]HopGroup{}
		for s := 1; s <= sessions; s++ {
			entries[ncproto.SessionID(s)] = []HopGroup{{Addrs: []string{tag}}}
		}
		tab.ApplyBatch(entries)
	}
	push("v0")

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hops []string
			for !stop.Load() {
				want := ""
				for s := 1; s <= sessions; s++ {
					hops = tab.AppendNextHops(hops[:0], ncproto.SessionID(s), 7)
					if len(hops) != 1 {
						errs <- fmt.Sprintf("session %d: %d hops", s, len(hops))
						return
					}
					if want == "" {
						want = hops[0]
					}
					// Reader raced a push: a later session may already show
					// the next version, but never a torn entry.
					if hops[0] != want && hops[0] != "" {
						want = hops[0]
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		push(fmt.Sprintf("v%d", i+1))
	}
	stop.Store(true)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	if got := tab.Version(); got < 201 {
		t.Fatalf("table version = %d, want >= 201", got)
	}
}

// TestUpdateTableRCUNoPauseEvents pins the tentpole guarantee: in the
// default RCU mode, table pushes record zero pause/resume events, leave the
// pause histogram empty, and still count as swaps.
func TestUpdateTableRCUNoPauseEvents(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	reg := telemetry.NewRegistry()
	v := NewVNF(n.Host("v"), WithTelemetry(reg))
	v.Start()
	defer v.Close()

	v.UpdateTable(map[ncproto.SessionID][]HopGroup{1: {{Addrs: []string{"x"}}}})
	v.UpdateTable(map[ncproto.SessionID][]HopGroup{1: {{Addrs: []string{"y"}}}})
	if err := v.Table().Save(t.TempDir() + "/tab"); err != nil {
		t.Fatal(err)
	}
	if err := v.ReloadTableFile(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing table file accepted")
	}

	rec := reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if p, r := rec.EventsOf(telemetry.EventPause), rec.EventsOf(telemetry.EventResume); len(p) != 0 || len(r) != 0 {
		t.Fatalf("pause/resume events = %d/%d, want 0/0", len(p), len(r))
	}
	if got := reg.Histogram(MetricTableSwapNs).Count(); got != 0 {
		t.Fatalf("pause histogram count = %d, want 0", got)
	}
	if got := reg.Counter(MetricTableSwaps, 1).Value(); got != 2 {
		t.Fatalf("table swaps = %d, want 2", got)
	}
}

// differentialTrace drives one recoder VNF through a fixed packet trace with
// table pushes interleaved at fixed packet indices, and returns the exact
// emission sequence (destination + wire bytes, in order).
func differentialTrace(t *testing.T, pause bool) ([]string, [][]byte) {
	t.Helper()
	params := smallParams()
	conn := newCaptureConn("relay")
	opts := []VNFOption{WithSeed(42)}
	if pause {
		opts = append(opts, WithPauseTableSwap())
	}
	v := NewVNF(conn, opts...)
	defer v.Close()

	const sessions = 3
	for s := 1; s <= sessions; s++ {
		if err := v.Configure(SessionConfig{ID: ncproto.SessionID(s), Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
			t.Fatal(err)
		}
	}
	push := func(tag string) {
		entries := map[ncproto.SessionID][]HopGroup{}
		for s := 1; s <= sessions; s++ {
			entries[ncproto.SessionID(s)] = []HopGroup{{Addrs: []string{"sink-" + tag}}}
		}
		v.UpdateTable(entries)
	}
	push("a")

	k := params.GenerationBlocks
	idx := 0
	for g := 0; g < 6; g++ {
		for s := 1; s <= sessions; s++ {
			enc, err := rlnc.NewEncoder(params, randomBytes(int64(100+10*g+s), params.GenerationBytes()), int64(g*sessions+s))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k+1; i++ {
				cb := enc.Coded()
				wire := (&ncproto.Packet{
					Session:    ncproto.SessionID(s),
					Generation: ncproto.GenerationID(g),
					Coeffs:     cb.Coeffs,
					Payload:    cb.Payload,
				}).Encode(nil)
				v.InjectPacket(wire)
				idx++
				// Interleaved controller pushes, same packet indices in both
				// modes: flip the whole table between two hop sets.
				if idx%7 == 0 {
					push("b")
				} else if idx%11 == 0 {
					push("a")
				}
			}
		}
	}
	return conn.dsts, conn.pkts
}

// TestTableSwapDifferentialRCUvsPause pins the RCU read path bit-identical
// to the legacy pause-lock path: the same packet trace with the same
// interleaved table pushes produces the same forwarding decisions — the
// identical sequence of (destination, wire bytes) emissions.
func TestTableSwapDifferentialRCUvsPause(t *testing.T) {
	rcuDst, rcuPkt := differentialTrace(t, false)
	pseDst, psePkt := differentialTrace(t, true)
	if len(rcuDst) == 0 {
		t.Fatal("trace produced no emissions")
	}
	if len(rcuDst) != len(pseDst) {
		t.Fatalf("emission count differs: rcu %d, pause %d", len(rcuDst), len(pseDst))
	}
	for i := range rcuDst {
		if rcuDst[i] != pseDst[i] {
			t.Fatalf("emission %d destination differs: rcu %q, pause %q", i, rcuDst[i], pseDst[i])
		}
		if !bytes.Equal(rcuPkt[i], psePkt[i]) {
			t.Fatalf("emission %d bytes differ between rcu and pause paths", i)
		}
	}
}

// TestTableSwapConcurrentDifferential runs the same end-to-end transfer —
// src → recoder relay → decoder receiver — in both table-swap modes while a
// goroutine hammers semantically identical table pushes, and requires every
// generation to decode in both. Under -race this is also the memory-safety
// proof for lock-free reads racing copy-on-write publishes.
func TestTableSwapConcurrentDifferential(t *testing.T) {
	run := func(pause bool) (int, *telemetry.Registry) {
		n := emunet.NewNetwork(emunet.AllowDefault())
		defer n.Close()
		params := smallParams()
		reg := telemetry.NewRegistry()
		opts := []VNFOption{WithSeed(5), WithTelemetry(reg)}
		if pause {
			opts = append(opts, WithPauseTableSwap())
		}
		relay := NewVNF(n.Host("relay"), opts...)
		if err := relay.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
			t.Fatal(err)
		}
		relay.Table().Set(1, []HopGroup{{Addrs: []string{"recv"}}})
		relay.Start()
		defer relay.Close()

		src, err := NewSource(n.Host("src"), SourceConfig{
			Session: 1, Params: params, Systematic: true, Seed: 3, Redundancy: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		recv, err := NewReceiver(n.Host("recv"), 1, params, "src", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Push the same forwarding semantics over and over (plus churn on
			// unrelated sessions) so correctness is mode-independent while the
			// swap machinery runs hot.
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				relay.UpdateTable(map[ncproto.SessionID][]HopGroup{
					1:                          {{Addrs: []string{"recv"}}},
					ncproto.SessionID(100 + i%8): {{Addrs: []string{"elsewhere"}}},
				})
			}
		}()

		const gens = 20
		data := randomBytes(9, gens*params.GenerationBytes())
		if _, _, err := src.SendData(data); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool { return recv.Generations() == gens })
		close(stop)
		wg.Wait()
		return recv.Generations(), reg
	}

	rcuGens, rcuReg := run(false)
	pauseGens, _ := run(true)
	if rcuGens != 20 || pauseGens != 20 {
		t.Fatalf("decode verdicts differ under concurrent pushes: rcu %d/20, pause %d/20", rcuGens, pauseGens)
	}
	if got := rcuReg.Histogram(MetricTableSwapNs).Count(); got != 0 {
		t.Fatalf("RCU mode observed %d shard pauses under concurrent pushes, want 0", got)
	}
}

// BenchmarkTableRead measures the lock-free per-packet lookup against a
// populated table, alone and while a writer continuously publishes updates —
// the forwarding-path cost the RCU design optimizes for.
func BenchmarkTableRead(b *testing.B) {
	tab := NewForwardingTable()
	const sessions = 4096
	entries := map[ncproto.SessionID][]HopGroup{}
	for s := 1; s <= sessions; s++ {
		entries[ncproto.SessionID(s)] = []HopGroup{
			{Addrs: []string{"a", "b", "c"}, PerGen: 2},
			{Addrs: []string{"d"}},
		}
	}
	tab.ApplyBatch(entries)

	b.Run("steady", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var hops []string
			var s ncproto.SessionID
			for pb.Next() {
				s = (s + 1) % sessions
				hops = tab.AppendNextHops(hops[:0], s+1, 7)
			}
			_ = hops
		})
	})
	b.Run("contended", func(b *testing.B) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tab.Set(1, []HopGroup{{Addrs: []string{"a"}}})
				}
			}
		}()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var hops []string
			var s ncproto.SessionID
			for pb.Next() {
				s = (s + 1) % sessions
				hops = tab.AppendNextHops(hops[:0], s+1, 7)
			}
			_ = hops
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}
