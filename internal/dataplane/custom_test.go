package dataplane

import (
	"sync/atomic"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
)

// countingMirror duplicates every packet to every hop and counts arrivals —
// a trivially simple "application-specific module" standing in for a
// non-coding middlebox.
type countingMirror struct {
	seen atomic.Int64
}

func (m *countingMirror) OnPacket(p *ncproto.Packet, hops []string, emit Emitter) {
	m.seen.Add(1)
	for _, h := range hops {
		emit(h, p)
	}
}

// dropEven drops packets of even generations (a policy middlebox).
type dropEven struct{}

func (dropEven) OnPacket(p *ncproto.Packet, hops []string, emit Emitter) {
	if p.Generation%2 == 0 {
		return
	}
	for _, h := range hops {
		emit(h, p)
	}
}

func TestCustomFunctionMirrors(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	v := NewVNF(n.Host("mbox"))
	mirror := &countingMirror{}
	if err := v.ConfigureFunction(SessionConfig{ID: 1, Params: params}, mirror); err != nil {
		t.Fatal(err)
	}
	v.Table().Set(1, []HopGroup{{Addrs: []string{"sinkA"}}, {Addrs: []string{"sinkB"}}})
	v.Start()
	defer v.Close()
	sinkA, sinkB := n.Host("sinkA"), n.Host("sinkB")

	p := &ncproto.Packet{Session: 1, Generation: 3, Coeffs: make([]byte, 4), Payload: make([]byte, params.BlockSize)}
	n.Host("src").Send("mbox", p.Encode(nil))

	for _, sink := range []*emunet.Host{sinkA, sinkB} {
		got, _, err := sink.Recv()
		if err != nil {
			t.Fatal(err)
		}
		out, err := ncproto.Decode(got, 4)
		if err != nil || out.Generation != 3 {
			t.Fatalf("mirrored packet wrong: %v %v", out, err)
		}
	}
	if mirror.seen.Load() != 1 {
		t.Fatalf("seen = %d", mirror.seen.Load())
	}
	if v.Stats().PacketsOut != 2 {
		t.Fatalf("PacketsOut = %d, want 2", v.Stats().PacketsOut)
	}
}

func TestCustomFunctionPolicyDrop(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	v := NewVNF(n.Host("mbox"))
	if err := v.ConfigureFunction(SessionConfig{ID: 1, Params: params}, dropEven{}); err != nil {
		t.Fatal(err)
	}
	v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
	v.Start()
	defer v.Close()
	sink := n.Host("sink")
	src := n.Host("src")

	for g := 0; g < 4; g++ {
		p := &ncproto.Packet{Session: 1, Generation: ncproto.GenerationID(g), Coeffs: make([]byte, 4), Payload: make([]byte, params.BlockSize)}
		src.Send("mbox", p.Encode(nil))
	}
	var got []ncproto.GenerationID
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		done := make(chan *ncproto.Packet, 1)
		go func() {
			pkt, _, err := sink.Recv()
			if err != nil {
				done <- nil
				return
			}
			p, _ := ncproto.Decode(pkt, 4)
			done <- p
		}()
		select {
		case p := <-done:
			if p != nil {
				got = append(got, p.Generation)
			}
		case <-timeout:
			t.Fatalf("received %v before timeout", got)
		}
	}
	for _, g := range got {
		if g%2 == 0 {
			t.Fatalf("even generation %d leaked through the policy", g)
		}
	}
	if !waitFor(t, 2*time.Second, func() bool { return v.Stats().PacketsIn == 4 }) {
		t.Fatalf("PacketsIn = %d", v.Stats().PacketsIn)
	}
}

func TestConfigureFunctionNil(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	if err := v.ConfigureFunction(SessionConfig{ID: 1, Params: smallParams()}, nil); err == nil {
		t.Fatal("nil function accepted")
	}
}

func TestConfigureFunctionBadParams(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	if err := v.ConfigureFunction(SessionConfig{ID: 1}, dropEven{}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestRoleCustomString(t *testing.T) {
	if RoleCustom.String() != "custom" {
		t.Fatalf("RoleCustom.String() = %s", RoleCustom)
	}
}
