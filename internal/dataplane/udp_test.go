package dataplane

import (
	"bytes"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
)

// TestUDPPipeline runs source -> recoding VNF -> receiver over real UDP
// sockets on the loopback interface: the same code path the emulated
// experiments exercise, bound to kernel sockets.
func TestUDPPipeline(t *testing.T) {
	params := smallParams()
	registry := emunet.NewRegistry()

	srcConn, err := emunet.ListenUDP("udp-src", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	relayConn, err := emunet.ListenUDP("udp-relay", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	recvConn, err := emunet.ListenUDP("udp-recv", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}

	relay := NewVNF(relayConn, WithSeed(5))
	if err := relay.Configure(SessionConfig{ID: 7, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(7, []HopGroup{{Addrs: []string{"udp-recv"}}})
	relay.Start()
	defer relay.Close()

	src, err := NewSource(srcConn, SourceConfig{Session: 7, Params: params, Systematic: true, Redundancy: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"udp-relay"}}})

	recv, err := NewReceiver(recvConn, 7, params, "udp-src", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const ngen = 12
	data := randomBytes(77, ngen*params.GenerationBytes())
	if _, sent, err := src.SendData(data); err != nil || sent != ngen {
		t.Fatalf("send: %d, %v", sent, err)
	}
	if !waitFor(t, 10*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("decoded %d of %d generations over UDP", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("UDP pipeline data mismatch")
	}
	// ACKs must have flowed back to the source over UDP too.
	select {
	case ack := <-src.Acks():
		if ack.Session != 7 {
			t.Fatalf("ack for wrong session: %+v", ack)
		}
		if ack.From != "udp-recv" {
			t.Fatalf("ack from %q, want udp-recv", ack.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ACK over UDP")
	}
}

// TestUDPGenerationDispatch checks that two VNF instances behind one hop
// group split generations consistently over real sockets.
func TestUDPGenerationDispatch(t *testing.T) {
	params := smallParams()
	registry := emunet.NewRegistry()
	srcConn, err := emunet.ListenUDP("d-src", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srcConn.Close()
	var sinks []*emunet.UDPConn
	for _, name := range []string{"d-a", "d-b"} {
		c, err := emunet.ListenUDP(name, "127.0.0.1:0", registry)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sinks = append(sinks, c)
	}

	src, err := NewSource(srcConn, SourceConfig{Session: 3, Params: params, Systematic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"d-a", "d-b"}}})

	const ngen = 16
	if _, _, err := src.SendData(randomBytes(5, ngen*params.GenerationBytes())); err != nil {
		t.Fatal(err)
	}

	// Collect which instance saw which generation; packets of one
	// generation must all land on the same instance.
	genOwner := make(map[ncproto.GenerationID]int)
	deadline := time.After(10 * time.Second)
	total := 0
	want := ngen * params.GenerationBlocks
	results := make(chan struct {
		idx int
		gid ncproto.GenerationID
	}, want)
	for i, c := range sinks {
		go func(idx int, c *emunet.UDPConn) {
			for {
				pkt, _, err := c.Recv()
				if err != nil {
					return
				}
				p, err := ncproto.Decode(pkt, params.GenerationBlocks)
				if err != nil {
					continue
				}
				results <- struct {
					idx int
					gid ncproto.GenerationID
				}{idx, p.Generation}
			}
		}(i, c)
	}
	for total < want {
		select {
		case r := <-results:
			if owner, seen := genOwner[r.gid]; seen && owner != r.idx {
				t.Fatalf("generation %d split across instances %d and %d", r.gid, owner, r.idx)
			}
			genOwner[r.gid] = r.idx
			total++
		case <-deadline:
			t.Fatalf("received %d of %d packets", total, want)
		}
	}
	// With 16 generations both instances should have seen some.
	seen := map[int]bool{}
	for _, idx := range genOwner {
		seen[idx] = true
	}
	if len(seen) != 2 {
		t.Fatalf("dispatch did not spread generations: %v", genOwner)
	}
}
