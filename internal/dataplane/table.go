// Package dataplane implements the network coding VNF of Sec. III: the
// packet-processing function that receives coded UDP datagrams, buffers
// them by (session, generation), recodes in a pipelined fashion, and
// forwards along the session's next hops. The same code runs in four roles:
//
//   - Encoder: a source-side function that splits application data into
//     generations and emits systematic + redundant coded packets.
//   - Recoder: an intermediate VNF. The first packet of a generation is
//     simply forwarded; every later arrival triggers emission of a fresh
//     recoded packet ("pipelined fashion", Sec. III-B2).
//   - Decoder: recovers generations by progressive Gaussian elimination and
//     delivers payload to the application (and ACKs the source).
//   - Forwarder: relays packets unchanged (the routing-only baseline and
//     the single-input-flow case where "direct forwarding is sufficient").
//
// VNFs are substrate-agnostic: they run over an emunet.PacketConn, which is
// backed either by the in-process emulated network or by real UDP sockets.
package dataplane

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ncfn/internal/ncproto"
)

// HopGroup is one logical next hop: a set of VNF instances in the same data
// center. Packets are dispatched across the instances by (session,
// generation) hash so that all packets of a generation reach the same
// instance (Sec. IV-A: "Packets belonging to the same generation are
// dispatched to the same VNF instance").
//
// PerGen is the hop's packet quota per generation, derived by the
// controller from the session's actual flow f_m(e) on the corresponding
// link: a link carrying f_m(e) of a session with rate λ_m and k blocks per
// generation receives ⌈k·f_m(e)/λ_m⌉ distinct coded packets per generation.
// Zero means "every packet" (simple replication, the unicast/forwarding
// case).
type HopGroup struct {
	Addrs  []string
	PerGen int
}

// quota resolves the hop's per-generation packet budget given the session
// default (generation size + redundancy).
func (h HopGroup) quota(def int) int {
	if h.PerGen > 0 {
		return h.PerGen
	}
	return def
}

// Pick selects the instance for a generation. The FNV-1a hash is computed
// inline (identical to hash/fnv over the same 6 bytes) so the per-packet
// path does not allocate a hasher.
func (h HopGroup) Pick(s ncproto.SessionID, g ncproto.GenerationID) string {
	if len(h.Addrs) == 0 {
		return ""
	}
	if len(h.Addrs) == 1 {
		return h.Addrs[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	var b = [6]byte{
		byte(s >> 8), byte(s),
		byte(g >> 24), byte(g >> 16), byte(g >> 8), byte(g),
	}
	hash := uint32(offset32)
	for _, c := range b {
		hash ^= uint32(c)
		hash *= prime32
	}
	return h.Addrs[int(hash)%len(h.Addrs)]
}

// ForwardingTable maps each session to its next-hop groups. The paper
// stores it as a text file pushed by the controller (NC_FORWARD_TAB) and
// reloaded on SIGUSR1.
//
// Reads are RCU-style lock-free: the whole table lives in one immutable
// snapshot published through an atomic pointer, so the per-packet lookups
// (AppendNextHops, AppendGroups) cost a single atomic load and never
// contend with writers. Writers serialize on a mutex, copy the map, mutate
// the copy, and publish it; installed hop groups are deep-copied on the way
// in and never mutated afterwards, so a reader that loaded the old snapshot
// keeps a fully consistent (merely stale) view. A reader observes every
// entry of a batch update atomically — there is no interleaving where half
// a push is visible.
type ForwardingTable struct {
	writeMu sync.Mutex // serializes copy-on-write updates
	snap    atomic.Pointer[tableSnapshot]
	version atomic.Uint64
}

// tableSnapshot is one immutable published table state. The map and every
// HopGroup slice reachable from it are frozen at publication.
type tableSnapshot struct {
	entries map[ncproto.SessionID][]HopGroup
}

// NewForwardingTable returns an empty table.
func NewForwardingTable() *ForwardingTable {
	t := &ForwardingTable{}
	t.writeMu.Lock()
	t.snap.Store(&tableSnapshot{entries: map[ncproto.SessionID][]HopGroup{}})
	t.writeMu.Unlock()
	return t
}

// load returns the current immutable snapshot map. Reading a nil map is
// safe, so even a zero-value table (no snapshot published yet) reads as
// empty.
func (t *ForwardingTable) load() map[ncproto.SessionID][]HopGroup {
	if s := t.snap.Load(); s != nil {
		return s.entries
	}
	return nil
}

// Version returns the number of published table updates. Readers can cheaply
// detect that a snapshot they are iterating has been superseded.
func (t *ForwardingTable) Version() uint64 { return t.version.Load() }

// mutate runs one copy-on-write transaction: clone the current map (sharing
// the immutable group slices), apply f, publish. Callers must deep-copy any
// hop groups they install.
func (t *ForwardingTable) mutate(f func(m map[ncproto.SessionID][]HopGroup)) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	old := t.load()
	m := make(map[ncproto.SessionID][]HopGroup, len(old)+1)
	for s, g := range old {
		m[s] = g
	}
	f(m)
	t.snap.Store(&tableSnapshot{entries: m})
	t.version.Add(1)
}

// copyGroups deep-copies hop groups so installed state never aliases caller
// memory.
func copyGroups(hops []HopGroup) []HopGroup {
	cp := make([]HopGroup, len(hops))
	for i, h := range hops {
		cp[i] = HopGroup{Addrs: append([]string(nil), h.Addrs...), PerGen: h.PerGen}
	}
	return cp
}

// Set replaces the hop groups for a session.
func (t *ForwardingTable) Set(s ncproto.SessionID, hops []HopGroup) {
	cp := copyGroups(hops)
	t.mutate(func(m map[ncproto.SessionID][]HopGroup) { m[s] = cp })
}

// Delete removes a session's entry.
func (t *ForwardingTable) Delete(s ncproto.SessionID) {
	t.mutate(func(m map[ncproto.SessionID][]HopGroup) { delete(m, s) })
}

// ApplyBatch applies one controller push as a single copy-on-write
// transaction: a nil hop list deletes the session, anything else replaces
// it. Readers observe either the whole batch or none of it, and the table is
// copied once regardless of batch size (Set in a loop would copy it per
// entry).
func (t *ForwardingTable) ApplyBatch(entries map[ncproto.SessionID][]HopGroup) {
	t.mutate(func(m map[ncproto.SessionID][]HopGroup) {
		for s, hops := range entries {
			if hops == nil {
				delete(m, s)
				continue
			}
			m[s] = copyGroups(hops)
		}
	})
}

// NextHops returns the instance addresses to forward a packet of (s, g) to:
// one instance per hop group.
func (t *ForwardingTable) NextHops(s ncproto.SessionID, g ncproto.GenerationID) []string {
	groups := t.load()[s]
	if len(groups) == 0 {
		return nil
	}
	out := make([]string, 0, len(groups))
	for _, h := range groups {
		if a := h.Pick(s, g); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// AppendNextHops appends the instance addresses for (s, g) to dst and
// returns it — the allocation-free variant of NextHops for the packet path.
// The lookup is lock-free: one atomic snapshot load, no reader-writer
// contention even while a controller push is in flight.
func (t *ForwardingTable) AppendNextHops(dst []string, s ncproto.SessionID, g ncproto.GenerationID) []string {
	for _, h := range t.load()[s] {
		if a := h.Pick(s, g); a != "" {
			dst = append(dst, a)
		}
	}
	return dst
}

// AppendGroups appends the session's hop groups to dst and returns it — the
// allocation-free variant of Groups for the packet path. The appended
// values share the snapshot's backing arrays, which are immutable once
// published (writers deep-copy on the way in and publish whole snapshots),
// so callers may read them freely but must not mutate them; a concurrent
// table update leaves previously appended groups intact but stale.
func (t *ForwardingTable) AppendGroups(dst []HopGroup, s ncproto.SessionID) []HopGroup {
	return append(dst, t.load()[s]...)
}

// Groups returns a copy of the hop groups for a session.
func (t *ForwardingTable) Groups(s ncproto.SessionID) []HopGroup {
	return copyGroups(t.load()[s])
}

// Sessions returns the sessions with entries, sorted.
func (t *ForwardingTable) Sessions() []ncproto.SessionID {
	entries := t.load()
	out := make([]ncproto.SessionID, 0, len(entries))
	for s := range entries {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of session entries.
func (t *ForwardingTable) Len() int {
	return len(t.load())
}

// Snapshot returns a deep copy of the table contents.
func (t *ForwardingTable) Snapshot() map[ncproto.SessionID][]HopGroup {
	entries := t.load()
	out := make(map[ncproto.SessionID][]HopGroup, len(entries))
	for s, groups := range entries {
		out[s] = copyGroups(groups)
	}
	return out
}

// ReplaceAll swaps in a whole new table content atomically.
func (t *ForwardingTable) ReplaceAll(entries map[ncproto.SessionID][]HopGroup) {
	m := make(map[ncproto.SessionID][]HopGroup, len(entries))
	for s, groups := range entries {
		m[s] = copyGroups(groups)
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.snap.Store(&tableSnapshot{entries: m})
	t.version.Add(1)
}

// Save writes the table in the paper's text format: one line per session,
// "session <id>: addr1,addr2|addr3" where '|' separates hop groups and ','
// separates instances within a group.
func (t *ForwardingTable) Save(path string) error {
	snapshot := t.load()

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataplane: save table: %w", err)
	}
	w := bufio.NewWriter(f)
	ids := make([]ncproto.SessionID, 0, len(snapshot))
	for s := range snapshot {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, s := range ids {
		var groups []string
		for _, h := range snapshot[s] {
			g := strings.Join(h.Addrs, ",")
			if h.PerGen > 0 {
				g = fmt.Sprintf("%s@%d", g, h.PerGen)
			}
			groups = append(groups, g)
		}
		fmt.Fprintf(w, "session %d: %s\n", s, strings.Join(groups, "|"))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dataplane: save table: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataplane: save table: %w", err)
	}
	return nil
}

// LoadTable parses a table file written by Save. Entries are collected into
// one map and published as a single snapshot, so loading an n-session table
// costs one copy rather than n copy-on-write transactions.
func LoadTable(path string) (*ForwardingTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataplane: load table: %w", err)
	}
	defer f.Close()
	entries := map[ncproto.SessionID][]HopGroup{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var id int
		rest := ""
		if _, err := fmt.Sscanf(text, "session %d: %s", &id, &rest); err != nil {
			// Allow empty hop lists: "session 3:".
			if _, err2 := fmt.Sscanf(text, "session %d:", &id); err2 != nil {
				return nil, fmt.Errorf("dataplane: load table: line %d: %q", line, text)
			}
		}
		var hops []HopGroup
		if rest != "" {
			for _, group := range strings.Split(rest, "|") {
				perGen := 0
				if at := strings.LastIndex(group, "@"); at >= 0 {
					if _, err := fmt.Sscanf(group[at+1:], "%d", &perGen); err != nil {
						return nil, fmt.Errorf("dataplane: load table: line %d: bad quota %q", line, group)
					}
					group = group[:at]
				}
				addrs := strings.Split(group, ",")
				hops = append(hops, HopGroup{Addrs: addrs, PerGen: perGen})
			}
		}
		entries[ncproto.SessionID(id)] = hops
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataplane: load table: %w", err)
	}
	t := NewForwardingTable()
	t.ReplaceAll(entries)
	return t, nil
}
