package dataplane

import (
	"ncfn/internal/buffer"
	"ncfn/internal/emunet"
)

// txCoalescer accumulates outgoing coded packets into per-destination
// rings and hands each ring to the conn's SendBatch as one syscall-batched
// flush. A ring flushes when it reaches the configured depth; a drain
// flush (end of a worker run, end of a generation at the source) pushes
// out whatever is pending, so coalescing adds no idle latency — a packet
// is never held beyond the burst of processing that produced it.
//
// Each enqueued packet is copied from the caller's wire scratch into a
// pool buffer (the scratch is reused for the next emission) and recycled
// after the flush. Rings flush in first-use order and each ring is FIFO,
// so packets to one destination keep their emission order; because a
// session is pinned to one shard (or one source), this preserves per-
// (session, generation) ordering on every path.
//
// A coalescer is single-owner state: each VNF shard's coalescer is
// guarded by that shard's pauseMu and the source's by emitMu. Flush
// errors follow datagram semantics — the failed ring's packets are
// dropped and recycled — with the first error reported to callers that
// care (the source propagates it, the VNF shard does not, matching the
// per-packet path's treatment of Send errors).
type txCoalescer struct {
	bc    emunet.BatchPacketConn
	depth int
	rings map[string]*txRing
	order []string
	batch []emunet.Datagram // SendBatch scratch, recycled across flushes
}

// txRing is one destination's pending packets.
type txRing struct {
	dst  string
	pkts [][]byte
}

// newTxCoalescer builds a coalescer over conn, or nil when coalescing is
// disabled (depth <= 1) or the conn has no batch path — callers treat a
// nil coalescer as "send directly", which reproduces the per-packet
// behavior exactly.
func newTxCoalescer(conn emunet.PacketConn, depth int) *txCoalescer {
	if depth <= 1 {
		return nil
	}
	bc, ok := conn.(emunet.BatchPacketConn)
	if !ok {
		return nil
	}
	return &txCoalescer{
		bc:    bc,
		depth: depth,
		rings: make(map[string]*txRing),
	}
}

// add enqueues one wire-format packet for dst, flushing that ring if it
// reaches the coalescing depth.
func (c *txCoalescer) add(dst string, wire []byte) error {
	r := c.rings[dst]
	if r == nil {
		r = &txRing{dst: dst}
		c.rings[dst] = r
		c.order = append(c.order, dst)
	}
	pkt := buffer.GetPacket(len(wire))
	copy(pkt, wire)
	r.pkts = append(r.pkts, pkt)
	if len(r.pkts) >= c.depth {
		return c.flushRing(r)
	}
	return nil
}

// flush drains every ring in first-use order, returning the first error.
func (c *txCoalescer) flush() error {
	var firstErr error
	for _, dst := range c.order {
		if err := c.flushRing(c.rings[dst]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushRing sends one ring's pending packets as a batch and recycles
// their buffers (sent or not — datagram semantics).
func (c *txCoalescer) flushRing(r *txRing) error {
	if len(r.pkts) == 0 {
		return nil
	}
	c.batch = c.batch[:0]
	for _, p := range r.pkts {
		c.batch = append(c.batch, emunet.Datagram{Peer: r.dst, Pkt: p})
	}
	_, err := c.bc.SendBatch(c.batch)
	for i, p := range r.pkts {
		buffer.PutPacket(p)
		r.pkts[i] = nil
	}
	r.pkts = r.pkts[:0]
	for i := range c.batch {
		c.batch[i] = emunet.Datagram{}
	}
	return err
}

// pending reports the number of enqueued, unflushed packets (tests).
func (c *txCoalescer) pending() int {
	n := 0
	for _, r := range c.rings {
		n += len(r.pkts)
	}
	return n
}
