package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
)

// SourceConfig configures a session sender.
type SourceConfig struct {
	Session ncproto.SessionID
	Params  rlnc.Params
	// RateMbps paces the payload emission rate; zero sends as fast as the
	// conn accepts (the emulated links then shape the traffic).
	RateMbps float64
	// Redundancy is the number of extra coded packets per generation
	// (NC0/NC1/NC2).
	Redundancy int
	// Systematic emits the generation's source blocks uncoded before the
	// redundant coded packets, letting downstream nodes forward the first
	// packet of each generation without coding.
	Systematic bool
	// TxBatch coalesces the source's emissions into per-destination rings
	// of this depth flushed through the conn's SendBatch (sendmmsg on
	// linux); every generation boundary drains the rings, so a generation
	// is fully on the wire when SendGeneration returns. Zero or one — or a
	// conn without a batch path — sends one syscall per packet.
	TxBatch int
	// Seed fixes the coding randomness.
	Seed int64
	// Clock defaults to the real clock.
	Clock simclock.Clock
}

// Source is a session sender: it splits application data into generations,
// encodes, and emits paced packets to its next hops.
type Source struct {
	conn  emunet.PacketConn
	cfg   SourceConfig
	table *ForwardingTable

	mu      sync.Mutex
	nextGen ncproto.GenerationID

	// emitMu guards the emission scratch: one reusable coded block, one
	// wire buffer, and the tx coalescer — so the steady-state send path
	// allocates only its per-generation encoder.
	emitMu sync.Mutex
	emCB   rlnc.CodedBlock
	wire   []byte
	// txc, when non-nil (SourceConfig.TxBatch over a BatchPacketConn),
	// rings emissions per destination and flushes at ring depth and at
	// every generation boundary.
	txc *txCoalescer

	acks      chan AckFrom
	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// NewSource builds a Source over conn. Call Close to release the receive
// goroutine that collects generation ACKs.
func NewSource(conn emunet.PacketConn, cfg SourceConfig) (*Source, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("dataplane: source: %w", err)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	s := &Source{
		conn:  conn,
		cfg:   cfg,
		table: NewForwardingTable(),
		acks:  make(chan AckFrom, 4096),
		done:  make(chan struct{}),
		txc:   newTxCoalescer(conn, cfg.TxBatch),
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s, nil
}

// SetHops installs the source's next-hop groups for its session.
func (s *Source) SetHops(hops []HopGroup) {
	s.table.Set(s.cfg.Session, hops)
}

// AckFrom is a generation acknowledgement tagged with the acknowledging
// receiver's address, so multicast senders can track per-receiver progress.
type AckFrom struct {
	ncproto.Ack
	From string
}

// Acks returns the channel of generation acknowledgements flowing back
// from receivers.
func (s *Source) Acks() <-chan AckFrom { return s.acks }

// Addr returns the source's network address.
func (s *Source) Addr() string { return s.conn.LocalAddr() }

// Params returns the source's coding parameters.
func (s *Source) Params() rlnc.Params { return s.cfg.Params }

// recvLoop collects ACK control packets.
func (s *Source) recvLoop() {
	defer s.wg.Done()
	for {
		pkt, src, err := s.conn.Recv()
		if err != nil {
			if errors.Is(err, emunet.ErrClosed) {
				return
			}
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		ack, err := ncproto.DecodeAck(pkt)
		buffer.PutPacket(pkt) // the ACK is fully parsed; recycle the datagram
		if err == nil {
			select {
			case s.acks <- AckFrom{Ack: ack, From: src}:
			default:
			}
		}
	}
}

// Close stops the source.
func (s *Source) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

// SendData splits data into generations and sends them all, pacing at the
// configured rate. It returns the ID of the first generation sent and the
// number of generations.
func (s *Source) SendData(data []byte) (ncproto.GenerationID, int, error) {
	gens := rlnc.SplitGenerations(s.cfg.Params, data)
	if len(gens) == 0 {
		return 0, 0, nil
	}
	var first ncproto.GenerationID
	genBytes := float64(s.cfg.Params.GenerationBytes())
	var interval time.Duration
	if s.cfg.RateMbps > 0 {
		interval = time.Duration(genBytes * 8 / (s.cfg.RateMbps * 1e6) * float64(time.Second))
	}
	start := s.cfg.Clock.Now()
	for i, gen := range gens {
		last := i == len(gens)-1
		gid, err := s.SendGeneration(gen, last)
		if err != nil {
			return first, i, err
		}
		if i == 0 {
			first = gid
		}
		if interval > 0 && !last {
			// Absolute pacing: sleep to the schedule, not by increments,
			// so encoding time does not accumulate drift.
			next := start.Add(time.Duration(i+1) * interval)
			if d := next.Sub(s.cfg.Clock.Now()); d > 0 {
				s.cfg.Clock.Sleep(d)
			}
		}
	}
	return first, len(gens), nil
}

// SendGeneration encodes and emits a single generation (at most
// GenerationBytes of data) and returns its generation ID. If last is true
// the packets carry the end-of-session flag.
func (s *Source) SendGeneration(data []byte, last bool) (ncproto.GenerationID, error) {
	s.mu.Lock()
	gid := s.nextGen
	s.nextGen++
	s.mu.Unlock()
	if err := s.sendGenerationAs(gid, data, last); err != nil {
		return gid, err
	}
	return gid, nil
}

// ResendGeneration re-encodes and re-sends an already-sent generation with
// fresh random combinations (the reliability path when a generation times
// out without an ACK).
func (s *Source) ResendGeneration(gid ncproto.GenerationID, data []byte, extra int) error {
	enc, err := rlnc.NewEncoder(s.cfg.Params, data, s.cfg.Seed+int64(gid)+77)
	if err != nil {
		return err
	}
	groups := s.table.Groups(s.cfg.Session)
	if len(groups) == 0 {
		return fmt.Errorf("dataplane: source has no next hops")
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	for _, h := range groups {
		dst := h.Pick(s.cfg.Session, gid)
		if dst == "" {
			continue
		}
		for i := 0; i < extra; i++ {
			enc.CodedInto(&s.emCB)
			if err := s.emit(gid, s.emCB, false, false, dst); err != nil {
				return err
			}
		}
	}
	return s.flushEmit()
}

// flushEmit drains the tx coalescer at a generation boundary (callers hold
// emitMu).
func (s *Source) flushEmit() error {
	if s.txc == nil {
		return nil
	}
	if err := s.txc.flush(); err != nil {
		return fmt.Errorf("dataplane: emit flush: %w", err)
	}
	return nil
}

// sendGenerationAs encodes one generation and distributes packets across
// the hop groups. Each group receives its own quota of *distinct* packets
// (the conceptual-flow split that lets the multicast rate exceed any single
// link's capacity); a group with PerGen == 0 receives the full default
// budget of generation size + redundancy.
func (s *Source) sendGenerationAs(gid ncproto.GenerationID, data []byte, last bool) error {
	enc, err := rlnc.NewEncoder(s.cfg.Params, data, s.cfg.Seed+int64(gid))
	if err != nil {
		return err
	}
	groups := s.table.Groups(s.cfg.Session)
	if len(groups) == 0 {
		return fmt.Errorf("dataplane: source has no next hops")
	}
	k := s.cfg.Params.GenerationBlocks
	def := k + s.cfg.Redundancy
	emittedTotal := 0
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	for _, h := range groups {
		dst := h.Pick(s.cfg.Session, gid)
		if dst == "" {
			continue
		}
		quota := h.quota(def)
		for i := 0; i < quota; i++ {
			cb := s.emCB
			systematic := false
			if s.cfg.Systematic && emittedTotal < k {
				var ok bool
				cb, ok = enc.Systematic()
				systematic = ok
				if !ok {
					enc.CodedInto(&s.emCB)
					cb = s.emCB
				}
			} else {
				// Allocation-free emission: encode into the reusable block
				// (conn.Send copies the wire bytes before returning).
				enc.CodedInto(&s.emCB)
				cb = s.emCB
			}
			emittedTotal++
			if err := s.emit(gid, cb, systematic, last, dst); err != nil {
				return err
			}
		}
	}
	// Generation boundary: everything emitted above is on the wire before
	// SendGeneration returns, batched or not.
	return s.flushEmit()
}

// emit sends one coded block to one destination, encoding into the source's
// reusable wire buffer (callers hold emitMu).
func (s *Source) emit(gid ncproto.GenerationID, cb rlnc.CodedBlock, systematic, last bool, dst string) error {
	var flags byte
	if systematic {
		flags |= ncproto.FlagSystematic
	}
	if last {
		flags |= ncproto.FlagEndOfSession
	}
	s.wire = (&ncproto.Packet{
		Flags:      flags,
		Session:    s.cfg.Session,
		Generation: gid,
		Coeffs:     cb.Coeffs,
		Payload:    cb.Payload,
	}).Encode(s.wire)
	if s.txc != nil {
		if err := s.txc.add(dst, s.wire); err != nil {
			return fmt.Errorf("dataplane: emit to %s: %w", dst, err)
		}
		return nil
	}
	if err := s.conn.Send(dst, s.wire); err != nil {
		return fmt.Errorf("dataplane: emit to %s: %w", dst, err)
	}
	return nil
}
