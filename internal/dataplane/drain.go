package dataplane

import (
	"errors"
	"time"

	"ncfn/internal/ncproto"
	"ncfn/internal/telemetry"
)

// ErrDraining rejects operations that would grow a draining VNF's state
// (new session settings, new coding state).
var ErrDraining = errors.New("dataplane: draining")

// Drain states, published through the MetricDrainState gauge so operators
// and the rolling-restart walker can follow the lifecycle over /stats.
const (
	// DrainStateRunning: the VNF admits new sessions and new generations.
	DrainStateRunning int64 = 0
	// DrainStateDraining: no new coding state is admitted; in-flight
	// generations keep flushing through shard queues and coalescer rings.
	DrainStateDraining int64 = 1
	// DrainStateQuiesced: a draining VNF observed empty shard queues and
	// flushed tx rings — it is safe to close the conn without losing
	// accepted packets.
	DrainStateQuiesced int64 = 2
)

// drainPollInterval paces WaitQuiesced's quiescence sweeps.
const drainPollInterval = time.Millisecond

// Drain moves the VNF into the draining state: Configure refuses new
// session settings, and packets that would create coding state for a new
// generation are refused (counted in MetricDrainRefused) while existing
// generations keep flushing. Drain reports whether this call performed the
// transition (false: already draining). It never blocks packet processing.
func (v *VNF) Drain() bool {
	if !v.draining.CompareAndSwap(false, true) {
		return false
	}
	now := v.clock.Now().UnixNano()
	v.drainStartNs.Store(now)
	v.tel.drainState.Set(0, DrainStateDraining)
	v.tel.rec.Record(now, telemetry.EventDrainStart, v.node, 0, 0, 0)
	return true
}

// Draining reports whether the VNF is draining (or already quiesced).
func (v *VNF) Draining() bool { return v.draining.Load() }

// DrainState returns the published drain-state gauge value.
func (v *VNF) DrainState() int64 {
	if v.quiesced.Load() {
		return DrainStateQuiesced
	}
	if v.draining.Load() {
		return DrainStateDraining
	}
	return DrainStateRunning
}

// Quiesced sweeps the pipeline for residual in-flight work and reports
// whether a draining VNF has gone quiet. A shard is quiet when its queue is
// empty, no processing run is in progress, and its coalescer rings hold no
// unflushed packets; the sweep takes each shard's pauseMu briefly — waiting
// out any in-progress run — and flushes stragglers itself, so a true result
// means every packet accepted before the sweep has been pushed to the conn.
// Once observed, quiescence latches: the state gauge moves to
// DrainStateQuiesced and a drain-quiesced flight event records the drain
// duration. Packets may still arrive after quiescence (the conn stays open
// until Close); admission refusal keeps them from creating new state.
func (v *VNF) Quiesced() bool {
	if !v.draining.Load() {
		return false
	}
	if v.quiesced.Load() {
		return true
	}
	pending := 0
	for _, sh := range v.shards {
		sh.pauseMu.Lock()
		// Under the lock no run is in progress; flush anything a past run
		// (or a synchronous handlePacket caller) left in the rings.
		if sh.txc != nil {
			// Flush failures follow datagram semantics (dropped, not
			// retried) exactly as on the worker's run-end flush.
			_ = sh.txc.flush()
			pending += sh.txc.pending()
		}
		pending += len(sh.in)
		sh.pauseMu.Unlock()
	}
	v.tel.drainPending.Set(0, int64(pending))
	if pending != 0 {
		return false
	}
	if v.quiesced.CompareAndSwap(false, true) {
		now := v.clock.Now().UnixNano()
		v.tel.drainState.Set(0, DrainStateQuiesced)
		v.tel.rec.Record(now, telemetry.EventDrainQuiesced, v.node, 0, 0,
			now-v.drainStartNs.Load())
	}
	return true
}

// WaitQuiesced blocks until a draining VNF quiesces or the timeout expires,
// polling quiescence sweeps on the VNF's clock. It reports whether
// quiescence was reached. Calling it on a VNF that is not draining returns
// false immediately.
func (v *VNF) WaitQuiesced(timeout time.Duration) bool {
	if !v.draining.Load() {
		return false
	}
	deadline := v.clock.Now().Add(timeout)
	for {
		if v.Quiesced() {
			return true
		}
		if !v.clock.Now().Before(deadline) {
			return false
		}
		v.clock.Sleep(drainPollInterval)
	}
}

// Shutdown is the ordered close: drain (stop admitting new coding state),
// wait for shard queues and coalescer rings to flush — up to timeout — and
// only then close the conn. Unlike a bare Close, no packet accepted before
// Shutdown is lost in a queue or an unflushed tx ring. It reports whether
// the pipeline quiesced before the deadline (the VNF is closed either way).
func (v *VNF) Shutdown(timeout time.Duration) (quiesced bool, err error) {
	v.Drain()
	quiesced = v.WaitQuiesced(timeout)
	return quiesced, v.Close()
}

// refuseDrainAdmission counts one admission refusal — the packet (or batch)
// would have created coding state for a new generation on a draining VNF —
// and drops it through the regular drop accounting.
func (v *VNF) refuseDrainAdmission(cell int, sess ncproto.SessionID, gen ncproto.GenerationID, n int) {
	v.tel.drainRefused.Add(cell, uint64(n))
	v.dropPkt(cell, sess, gen, n)
}
