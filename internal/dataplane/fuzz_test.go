package dataplane

import (
	"os"
	"path/filepath"
	"testing"

	"ncfn/internal/emunet"
)

// FuzzLoadTable hardens the forwarding-table file parser: it must never
// panic, and accepted tables must survive a save/load round trip.
func FuzzLoadTable(f *testing.F) {
	f.Add("session 1: a,b@2|c\n")
	f.Add("# comment\n\nsession 4: a\n")
	f.Add("session 2:\n")
	f.Add("garbage\n")
	f.Add("session 9: @@\n")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.tab")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Skip()
		}
		ft, err := LoadTable(path)
		if err != nil {
			return
		}
		// Round trip: what loaded must save and reload identically.
		path2 := filepath.Join(dir, "t2.tab")
		if err := ft.Save(path2); err != nil {
			t.Fatalf("save of loaded table failed: %v", err)
		}
		again, err := LoadTable(path2)
		if err != nil {
			t.Fatalf("reload of saved table failed: %v", err)
		}
		if again.Len() != ft.Len() {
			t.Fatalf("round trip changed entry count: %d -> %d", ft.Len(), again.Len())
		}
	})
}

// FuzzHandlePacket feeds arbitrary datagrams to a configured VNF: the
// packet path must never panic regardless of input.
func FuzzHandlePacket(f *testing.F) {
	f.Add([]byte{0x9C, 0, 0, 1, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{0x9C})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		n := emunet.NewNetwork(emunet.AllowDefault())
		defer n.Close()
		v := NewVNF(n.Host("v"))
		if err := v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: RoleRecoder}); err != nil {
			t.Fatal(err)
		}
		v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
		n.Host("sink")
		v.handlePacket(pkt, "fuzz")
	})
}
