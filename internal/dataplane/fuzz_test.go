package dataplane

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// FuzzLoadTable hardens the forwarding-table file parser: it must never
// panic, and accepted tables must survive a save/load round trip.
func FuzzLoadTable(f *testing.F) {
	f.Add("session 1: a,b@2|c\n")
	f.Add("# comment\n\nsession 4: a\n")
	f.Add("session 2:\n")
	f.Add("garbage\n")
	f.Add("session 9: @@\n")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.tab")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Skip()
		}
		ft, err := LoadTable(path)
		if err != nil {
			return
		}
		// Round trip: what loaded must save and reload identically.
		path2 := filepath.Join(dir, "t2.tab")
		if err := ft.Save(path2); err != nil {
			t.Fatalf("save of loaded table failed: %v", err)
		}
		again, err := LoadTable(path2)
		if err != nil {
			t.Fatalf("reload of saved table failed: %v", err)
		}
		if again.Len() != ft.Len() {
			t.Fatalf("round trip changed entry count: %d -> %d", ft.Len(), again.Len())
		}
	})
}

// FuzzHandlePacket feeds arbitrary datagrams to a configured VNF: the
// packet path must never panic regardless of input.
func FuzzHandlePacket(f *testing.F) {
	f.Add([]byte{0x9C, 0, 0, 1, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{0x9C})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		n := emunet.NewNetwork(emunet.AllowDefault())
		defer n.Close()
		v := NewVNF(n.Host("v"))
		if err := v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: RoleRecoder}); err != nil {
			t.Fatal(err)
		}
		v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
		n.Host("sink")
		v.handlePacket(pkt, "fuzz")
	})
}

// FuzzPipelineCorruption drives truncated and bit-flipped datagrams through a
// fully started recoder → forwarder → decoder chain over emunet, interleaved
// with a valid generation, then tears the pipeline down. Two invariants: no
// stage may panic on any input, and the packet pool must never see a double
// put — a malformed packet must not confuse buffer ownership anywhere in the
// recode/forward/decode paths.
func FuzzPipelineCorruption(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{ncproto.Magic}, uint8(3), uint8(1))
	f.Add([]byte{ncproto.Magic, 0, 0, 1, 0, 0, 0, 0}, uint8(7), uint8(0x80))
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint8(100), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, cut, xor uint8) {
		buffer.SetAccounting(true)
		defer func() {
			// Runs after the VNFs and network below have closed and drained.
			if n := buffer.DoublePuts(); n != 0 {
				t.Fatalf("packet pool saw %d double puts", n)
			}
			buffer.SetAccounting(false)
		}()

		n := emunet.NewNetwork(emunet.AllowDefault())
		defer n.Close()
		params := smallParams()
		k := params.GenerationBlocks

		rec := NewVNF(n.Host("rec"))
		fwd := NewVNF(n.Host("fwd"))
		dec := NewVNF(n.Host("dec"))
		for _, v := range []struct {
			vnf  *VNF
			role Role
		}{{rec, RoleRecoder}, {fwd, RoleForwarder}, {dec, RoleDecoder}} {
			if err := v.vnf.Configure(SessionConfig{ID: 1, Params: params, Role: v.role}); err != nil {
				t.Fatal(err)
			}
		}
		rec.Table().Set(1, []HopGroup{{Addrs: []string{"fwd"}, PerGen: k}})
		fwd.Table().Set(1, []HopGroup{{Addrs: []string{"dec"}}})
		rec.Start()
		fwd.Start()
		dec.Start()
		defer rec.Close()
		defer fwd.Close()
		defer dec.Close()

		src := n.Host("src")
		enc, err := rlnc.NewEncoder(params, randomBytes(9, params.GenerationBytes()), 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			cb := enc.Coded()
			wire := (&ncproto.Packet{
				Session: 1, Generation: 0, Coeffs: cb.Coeffs, Payload: cb.Payload,
			}).Encode(nil)

			// Before each valid packet, inject a mutated sibling: one byte
			// flipped and the tail truncated at a fuzz-chosen offset.
			mut := append([]byte(nil), wire...)
			mut[int(xor)%len(mut)] ^= 1 + cut
			mut = mut[:int(cut)%(len(mut)+1)]
			src.Send("rec", mut)
			src.Send("rec", wire)
		}
		// Arbitrary fuzz bytes hit every stage directly, not just the head.
		src.Send("rec", raw)
		src.Send("fwd", raw)
		src.Send("dec", raw)

		// Let the pipeline chew before teardown so the corrupted packets
		// actually traverse the recode/forward/decode paths. Corrupted coded
		// packets with intact headers may legally pollute the decode, so only
		// packet flow — not decode success — is awaited.
		waitFor(t, time.Second, func() bool {
			return dec.Stats().PacketsIn >= uint64(k)
		})
	})
}
