package dataplane

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/rlnc"
)

// batchRecorder is a BatchPacketConn double that records every SendBatch
// call, for pinning the coalescer's flush policy and ordering.
type batchRecorder struct {
	batches [][]emunet.Datagram
	sends   []emunet.Datagram
}

func (r *batchRecorder) Send(dst string, pkt []byte) error {
	r.sends = append(r.sends, emunet.Datagram{Peer: dst, Pkt: append([]byte(nil), pkt...)})
	return nil
}

func (r *batchRecorder) SendBatch(batch []emunet.Datagram) (int, error) {
	cp := make([]emunet.Datagram, len(batch))
	for i, d := range batch {
		cp[i] = emunet.Datagram{Peer: d.Peer, Pkt: append([]byte(nil), d.Pkt...)}
	}
	r.batches = append(r.batches, cp)
	return len(batch), nil
}

func (r *batchRecorder) RecvBatch(buf []emunet.Datagram) (int, error) { return 0, emunet.ErrClosed }
func (r *batchRecorder) Recv() ([]byte, string, error)               { return nil, "", emunet.ErrClosed }
func (r *batchRecorder) LocalAddr() string                           { return "rec" }
func (r *batchRecorder) Close() error                                { return nil }

func TestTxCoalescerDisabled(t *testing.T) {
	rec := &batchRecorder{}
	if c := newTxCoalescer(rec, 1); c != nil {
		t.Fatal("depth 1 should disable coalescing")
	}
	if c := newTxCoalescer(rec, 0); c != nil {
		t.Fatal("depth 0 should disable coalescing")
	}
	// A plain PacketConn (no batch path) disables coalescing too.
	net := emunet.NewNetwork(emunet.AllowDefault())
	defer net.Close()
	if c := newTxCoalescer(net.Host("h"), 8); c != nil {
		t.Fatal("non-batch conn should disable coalescing")
	}
}

func TestTxCoalescerFlushPolicy(t *testing.T) {
	rec := &batchRecorder{}
	c := newTxCoalescer(rec, 4)
	if c == nil {
		t.Fatal("coalescer not built over a BatchPacketConn")
	}
	pkt := func(i int) []byte { return []byte(fmt.Sprintf("p%02d", i)) }
	// Three packets to A: under depth, nothing flushes.
	for i := 0; i < 3; i++ {
		if err := c.add("A", pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.batches) != 0 {
		t.Fatalf("flushed early: %d batches", len(rec.batches))
	}
	if c.pending() != 3 {
		t.Fatalf("pending = %d, want 3", c.pending())
	}
	// Fourth hits the depth: ring flushes as one batch, in order.
	if err := c.add("A", pkt(3)); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) != 1 || len(rec.batches[0]) != 4 {
		t.Fatalf("want one 4-packet batch, got %v", rec.batches)
	}
	for i, d := range rec.batches[0] {
		if d.Peer != "A" || string(d.Pkt) != string(pkt(i)) {
			t.Fatalf("batch[%d] = %q->%q, want A->%q (order broken?)", i, d.Peer, d.Pkt, pkt(i))
		}
	}
	// Mixed destinations under depth, then a drain flush: per-destination
	// batches in first-use order, each FIFO.
	c.add("B", pkt(10))
	c.add("C", pkt(20))
	c.add("B", pkt(11))
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	if c.pending() != 0 {
		t.Fatalf("pending after flush = %d", c.pending())
	}
	// Ring A flushes first (first-use order) but is empty; B then C follow.
	if len(rec.batches) != 3 {
		t.Fatalf("want 3 batches total, got %d", len(rec.batches))
	}
	b1, b2 := rec.batches[1], rec.batches[2]
	if len(b1) != 2 || b1[0].Peer != "B" || string(b1[0].Pkt) != "p10" || string(b1[1].Pkt) != "p11" {
		t.Fatalf("B ring wrong: %v", b1)
	}
	if len(b2) != 1 || b2[0].Peer != "C" || string(b2[0].Pkt) != "p20" {
		t.Fatalf("C ring wrong: %v", b2)
	}
}

// TestUDPPipelineCoalesced runs the full source -> recoder -> receiver
// pipeline over loopback UDP with tx coalescing on at every stage, and
// checks the decoded bytes match — the end-to-end twin of the emunet
// differential test.
func TestUDPPipelineCoalesced(t *testing.T) {
	params := rlnc.Params{GenerationBlocks: 8, BlockSize: 256}
	registry := emunet.NewRegistry()
	srcConn, err := emunet.ListenUDP("cz-src", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	relayConn, err := emunet.ListenUDP("cz-relay", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	recvConn, err := emunet.ListenUDP("cz-recv", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}

	relay := NewVNF(relayConn, WithSeed(5), WithTxCoalesce(16))
	if err := relay.Configure(SessionConfig{ID: 9, Params: params, Role: RoleRecoder, Redundancy: 2}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(9, []HopGroup{{Addrs: []string{"cz-recv"}}})
	relay.Start()
	defer relay.Close()

	// Paced: an unpaced batched source can outrun the relay's kernel rx
	// buffer, and UDP drops beyond the redundancy budget make the decode
	// count nondeterministic.
	src, err := NewSource(srcConn, SourceConfig{
		Session: 9, Params: params, Systematic: true, Redundancy: 2, Seed: 2, TxBatch: 16,
		RateMbps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"cz-relay"}}})

	recv, err := NewReceiver(recvConn, 9, params, "cz-src", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const ngen = 16
	data := randomBytes(42, ngen*params.GenerationBytes())
	if _, sent, err := src.SendData(data); err != nil || sent != ngen {
		t.Fatalf("send: %d, %v", sent, err)
	}
	if !waitFor(t, 10*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("decoded %d of %d generations with coalescing", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("coalesced UDP pipeline data mismatch")
	}
}

// BenchmarkUDPPipeline measures the real-socket pipeline end to end:
// source -> recoding VNF -> receiver on loopback, one full generation
// decoded per iteration, per-packet sends vs depth-16 coalescing.
func BenchmarkUDPPipeline(b *testing.B) {
	for _, depth := range []int{1, 16} {
		b.Run(fmt.Sprintf("txbatch=%d", depth), func(b *testing.B) {
			params := rlnc.Params{GenerationBlocks: 8, BlockSize: 256}
			registry := emunet.NewRegistry()
			srcConn, err := emunet.ListenUDP("b-src", "127.0.0.1:0", registry)
			if err != nil {
				b.Fatal(err)
			}
			relayConn, err := emunet.ListenUDP("b-relay", "127.0.0.1:0", registry)
			if err != nil {
				b.Fatal(err)
			}
			recvConn, err := emunet.ListenUDP("b-recv", "127.0.0.1:0", registry)
			if err != nil {
				b.Fatal(err)
			}
			relay := NewVNF(relayConn, WithSeed(5), WithWorkers(1), WithTxCoalesce(depth))
			if err := relay.Configure(SessionConfig{ID: 4, Params: params, Role: RoleRecoder, Redundancy: 2}); err != nil {
				b.Fatal(err)
			}
			relay.Table().Set(4, []HopGroup{{Addrs: []string{"b-recv"}}})
			relay.Start()
			defer relay.Close()
			src, err := NewSource(srcConn, SourceConfig{
				Session: 4, Params: params, Systematic: true, Redundancy: 2, Seed: 2, TxBatch: depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			src.SetHops([]HopGroup{{Addrs: []string{"b-relay"}}})
			recv, err := NewReceiver(recvConn, 4, params, "", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer recv.Close()

			gen := randomBytes(7, params.GenerationBytes())
			b.SetBytes(int64(len(gen)))
			b.ResetTimer()
			done := 0
			for i := 0; i < b.N; i++ {
				if _, err := src.SendGeneration(gen, false); err != nil {
					b.Fatal(err)
				}
				// Redundancy 2 over lossless loopback: every generation
				// decodes; wait for this one before sending the next so the
				// measurement is per-generation latency, not queue fill.
				deadline := time.Now().Add(10 * time.Second)
				for recv.Generations() <= done {
					if time.Now().After(deadline) {
						b.Fatalf("generation %d never decoded", i)
					}
					// Sleep, don't spin: a busy-wait pins the only P on a
					// small machine and the netpoller then only runs on
					// sysmon's ~10ms retake, flooring every iteration.
					time.Sleep(20 * time.Microsecond)
				}
				done = recv.Generations()
			}
		})
	}
}
