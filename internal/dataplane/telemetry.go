package dataplane

import (
	"ncfn/internal/gf"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// Telemetry instrument names. Every VNF owns one set of instruments in its
// registry (private by default, shared when the daemon passes one in via
// WithTelemetry); `ncctl stats` and the admin endpoint read them by these
// names.
const (
	MetricRxPackets       = "dataplane_rx_packets"
	MetricTxPackets       = "dataplane_tx_packets"
	MetricDroppedPackets  = "dataplane_dropped_packets"
	MetricGenerationsDone = "dataplane_generations_decoded"
	MetricRecoded         = "dataplane_recoded_emissions"
	MetricForwarded       = "dataplane_forwarded_packets"
	MetricBatchPackets    = "dataplane_batch_packets"
	MetricDecodeLatencyNs = "dataplane_decode_latency_ns"
	MetricTableSwapNs     = "dataplane_table_swap_ns"
	MetricShardQueueDepth = "dataplane_shard_queue_depth"
	FlightRecorderName    = "dataplane_flight"

	// Dependent (non-innovative) received packets, split by coefficient
	// field: a dependent arrival consumed link capacity but advanced no
	// decoder or recoder rank. Small fields trade exactly this overhead for
	// cheaper coding (Sec. III-B); the field-sweep experiment reads these
	// counters to measure the trade.
	MetricDependentGF2   = "dataplane_dependent_gf2_packets"
	MetricDependentGF256 = "dataplane_dependent_gf256_packets"

	// Session-store accounting (WithSessionStore). SessionBytes gauges the
	// estimated coding-state bytes retained across live generations and
	// pooled free-list arenas; LiveGenerations gauges tracked (session,
	// generation) states; GenerationsEvicted counts LRU/TTL/byte-cap
	// evictions; EvictedDrops counts late packets that arrived for an
	// already-evicted generation (dropped, never resurrected).
	MetricSessionBytes       = "dataplane_session_bytes"
	MetricLiveGenerations    = "dataplane_live_generations"
	MetricGenerationsEvicted = "dataplane_generations_evicted"
	MetricEvictedDrops       = "dataplane_evicted_packet_drops"

	// MetricTableSwaps counts forwarding-table updates in either swap mode.
	// Under the default RCU path the pause histogram (MetricTableSwapNs)
	// stays empty while this counter advances — the observable guarantee
	// that table pushes no longer stall shards.
	MetricTableSwaps = "dataplane_table_swaps"

	// Drain lifecycle (see drain.go). DrainState gauges the state machine
	// position (0 running, 1 draining, 2 quiesced) — operators and the
	// rolling-restart walker poll it over /stats. DrainPending gauges the
	// residual in-flight work observed by the last quiescence sweep (queued
	// datagrams plus unflushed coalescer packets). DrainRefused counts
	// packets refused because they would have created new coding state
	// while draining.
	MetricDrainState   = "dataplane_drain_state"
	MetricDrainPending = "dataplane_drain_pending"
	MetricDrainRefused = "dataplane_drain_refused_packets"
)

// vnfTelemetry is a VNF's instrument set. Counters are sharded with one
// cell per pipeline worker plus cell 0 for the receive goroutine (and for
// synchronous handlePacket callers), so the steady-state data plane never
// contends on a counter line: each writer pays exactly one relaxed atomic
// add.
type vnfTelemetry struct {
	rx        *telemetry.Counter
	tx        *telemetry.Counter
	drops     *telemetry.Counter
	gens      *telemetry.Counter
	recoded   *telemetry.Counter
	forwarded *telemetry.Counter
	depGF2    *telemetry.Counter
	depGF256  *telemetry.Counter

	// batch observes the run length of each shard drain; decode observes
	// per-generation decode latency (decoder creation to delivery) in
	// nanoseconds; tableSwap observes the paused duration of each
	// forwarding-table swap.
	batch     *telemetry.Histogram
	decodeNs  *telemetry.Histogram
	tableSwap *telemetry.Histogram

	// queueDepth holds each shard's residual channel depth, sampled by the
	// shard worker after every drain; Value() sums to the total backlog.
	queueDepth *telemetry.Gauge

	// Session-store instruments. The gauges are single-cell: they are only
	// written under store.mu (or from eviction, which is serialized per
	// victim), so striping would buy nothing.
	sessBytes    *telemetry.Gauge
	liveGens     *telemetry.Gauge
	evicted      *telemetry.Counter
	evictedDrops *telemetry.Counter
	tableSwaps   *telemetry.Counter

	// Drain instruments. The gauges are single-cell: drainState is written
	// only on state transitions and drainPending only by the quiescence
	// sweep. drainRefused is striped like the other packet counters.
	drainState   *telemetry.Gauge
	drainPending *telemetry.Gauge
	drainRefused *telemetry.Counter

	rec *telemetry.Recorder
}

// newVNFTelemetry builds the instrument set in reg with cells for workers
// shards (+1 for the receive side).
func newVNFTelemetry(reg *telemetry.Registry, workers int) vnfTelemetry {
	cells := workers + 1
	return vnfTelemetry{
		rx:         reg.Counter(MetricRxPackets, cells),
		tx:         reg.Counter(MetricTxPackets, cells),
		drops:      reg.Counter(MetricDroppedPackets, cells),
		gens:       reg.Counter(MetricGenerationsDone, cells),
		recoded:    reg.Counter(MetricRecoded, cells),
		forwarded:  reg.Counter(MetricForwarded, cells),
		depGF2:     reg.Counter(MetricDependentGF2, cells),
		depGF256:   reg.Counter(MetricDependentGF256, cells),
		batch:      reg.Histogram(MetricBatchPackets),
		decodeNs:   reg.Histogram(MetricDecodeLatencyNs),
		tableSwap:  reg.Histogram(MetricTableSwapNs),
		queueDepth: reg.Gauge(MetricShardQueueDepth, workers),

		sessBytes:    reg.Gauge(MetricSessionBytes, 1),
		liveGens:     reg.Gauge(MetricLiveGenerations, 1),
		evicted:      reg.Counter(MetricGenerationsEvicted, 1),
		evictedDrops: reg.Counter(MetricEvictedDrops, cells),
		tableSwaps:   reg.Counter(MetricTableSwaps, 1),

		drainState:   reg.Gauge(MetricDrainState, 1),
		drainPending: reg.Gauge(MetricDrainPending, 1),
		drainRefused: reg.Counter(MetricDrainRefused, cells),

		rec: reg.Recorder(FlightRecorderName, telemetry.DefaultRecorderCapacity),
	}
}

// dependent returns the dependent-packet counter for a session's field.
func (t *vnfTelemetry) dependent(f gf.Field) *telemetry.Counter {
	if f == gf.GF2 {
		return t.depGF2
	}
	return t.depGF256
}

// WithTelemetry attaches the VNF's instruments to the given registry
// instead of a private one, so a daemon can serve one merged snapshot for
// everything it hosts. Nil leaves the default (private registry).
func WithTelemetry(reg *telemetry.Registry) VNFOption {
	return func(v *VNF) {
		if reg != nil {
			v.reg = reg
		}
	}
}

// WithClock sets the clock used for telemetry timestamps and latency
// measurements (decode latency, table-swap pauses). The default is the real
// clock; the chaos harness passes its simclock.Virtual so flight-recorder
// events replay tick-for-tick.
func WithClock(clk simclock.Clock) VNFOption {
	return func(v *VNF) {
		if clk != nil {
			v.clock = clk
		}
	}
}

// Telemetry returns the registry holding the VNF's instruments.
func (v *VNF) Telemetry() *telemetry.Registry { return v.reg }
