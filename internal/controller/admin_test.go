package controller

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

// adminServer builds a daemon plus its admin endpoint over httptest.
func adminServer(t *testing.T, mutate func(*AdminConfig)) (*Daemon, *httptest.Server) {
	t.Helper()
	d, _, _ := testDaemon(t)
	cfg := AdminConfig{
		Daemon:   d,
		Registry: d.VNF().Telemetry(),
		Node:     "node",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := httptest.NewServer(NewAdminMux(cfg))
	t.Cleanup(srv.Close)
	return d, srv
}

// do issues one admin request and decodes the response body.
func do(t *testing.T, method, url string, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

func TestAdminStats(t *testing.T) {
	_, srv := adminServer(t, nil)
	code, body := do(t, http.MethodGet, srv.URL+"/stats", "")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d: %s", code, body)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("stats not a snapshot: %v", err)
	}
	if _, ok := snap.Gauges["dataplane_drain_state"]; !ok {
		t.Fatalf("drain gauge missing from stats: %v", snap.Gauges)
	}
}

func TestAdminDrainEndpoint(t *testing.T) {
	d, srv := adminServer(t, nil)
	mustApply(t, d, &Message{Signal: NCStart})

	code, body := do(t, http.MethodGet, srv.URL+"/drain", "")
	if code != http.StatusOK || !strings.Contains(body, `"state":"running"`) {
		t.Fatalf("GET /drain = %d: %s", code, body)
	}

	// Error paths around the one valid POST: bad deadline and bad method
	// first (they must not start a drain), the conflict after.
	if code, body := do(t, http.MethodPost, srv.URL+"/drain?deadline=soon", ""); code != http.StatusBadRequest {
		t.Fatalf("bad deadline = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodDelete, srv.URL+"/drain", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /drain = %d: %s", code, body)
	}
	if d.Draining() {
		t.Fatal("rejected requests started a drain")
	}

	code, body = do(t, http.MethodPost, srv.URL+"/drain?deadline=5s", "")
	if code != http.StatusOK || !strings.Contains(body, `"draining":true`) {
		t.Fatalf("POST /drain = %d: %s", code, body)
	}
	// Double drain: 409 whether the first drain is still waiting or already
	// closed the daemon (an idle VNF quiesces within a poll interval).
	if code, body := do(t, http.MethodPost, srv.URL+"/drain", ""); code != http.StatusConflict {
		t.Fatalf("double drain = %d: %s", code, body)
	}
}

func TestAdminReloadEndpoint(t *testing.T) {
	reg := emunet.NewRegistry()
	d, srv := adminServer(t, func(cfg *AdminConfig) { cfg.Peers = reg })
	applyDeploy(t, d, deployV1(), "node")

	cases := []struct {
		name string
		body string
		want int
	}{
		{"wrong method", "", http.StatusMethodNotAllowed},
		{"malformed json", `{`, http.StatusBadRequest},
		{"bad deploy diff", `{"sessions":[{"id":7,"roles":{"node":"oracle"}}]}`, http.StatusBadRequest},
		{"bad peer address", `{"version":2,"peers":{"p":"not-an-address"},"sessions":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method := http.MethodPost
			if tc.name == "wrong method" {
				method = http.MethodGet
			}
			code, body := do(t, method, srv.URL+"/reload", tc.body)
			if code != tc.want {
				t.Fatalf("%s = %d: %s", tc.name, code, body)
			}
		})
	}
	if d.DeployVersion() != 0 {
		t.Fatalf("rejected reloads claimed a version: %d", d.DeployVersion())
	}

	// A valid versioned reload applies and reports its diff.
	raw, err := json.Marshal(deployV2())
	if err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodPost, srv.URL+"/reload", string(raw))
	if code != http.StatusOK {
		t.Fatalf("POST /reload = %d: %s", code, body)
	}
	var sum ReloadSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Version != 2 || sum.SessionsAdded != 1 || sum.SessionsRemoved != 1 {
		t.Fatalf("summary = %+v", sum)
	}

	// Replaying the same version is a conflict, not a bad request.
	if code, body := do(t, http.MethodPost, srv.URL+"/reload", string(raw)); code != http.StatusConflict {
		t.Fatalf("stale reload = %d: %s", code, body)
	}

	// Reload-while-draining is a conflict too.
	markDraining(d)
	next := deployV2()
	next.Version = 3
	raw, err = json.Marshal(next)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := do(t, http.MethodPost, srv.URL+"/reload", string(raw)); code != http.StatusConflict {
		t.Fatalf("reload while draining = %d: %s", code, body)
	}
}

func TestAdminReloadRegistersPeers(t *testing.T) {
	reg := emunet.NewRegistry()
	_, srv := adminServer(t, func(cfg *AdminConfig) { cfg.Peers = reg })
	body := `{"version":1,"peers":{"sink":"127.0.0.1:9001"},"sessions":[]}`
	if code, out := do(t, http.MethodPost, srv.URL+"/reload", body); code != http.StatusOK {
		t.Fatalf("POST /reload = %d: %s", code, out)
	}
	if _, ok := reg.Lookup("sink"); !ok {
		t.Fatal("reload did not register the peer binding")
	}
}

func TestAdminRestartEndpoint(t *testing.T) {
	// Without a restart hook the endpoint is explicitly unsupported.
	_, plain := adminServer(t, nil)
	if code, body := do(t, http.MethodPost, plain.URL+"/restart", ""); code != http.StatusNotImplemented {
		t.Fatalf("restart without hook = %d: %s", code, body)
	}

	restarted := make(chan struct{})
	d, srv := adminServer(t, func(cfg *AdminConfig) {
		cfg.Restart = func() { close(restarted) }
	})
	mustApply(t, d, &Message{Signal: NCStart})
	if code, body := do(t, http.MethodGet, srv.URL+"/restart", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /restart = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPost, srv.URL+"/restart?deadline=nope", ""); code != http.StatusBadRequest {
		t.Fatalf("bad restart deadline = %d: %s", code, body)
	}
	code, body := do(t, http.MethodPost, srv.URL+"/restart?deadline=5s", "")
	if code != http.StatusOK || !strings.Contains(body, `"draining":true`) {
		t.Fatalf("POST /restart = %d: %s", code, body)
	}
	select {
	case <-restarted:
	case <-time.After(5 * time.Second):
		t.Fatal("restart hook never ran")
	}
	if !d.Closed() {
		t.Fatal("restart hook ran on an open daemon")
	}
	// A second restart on the now-closed daemon conflicts.
	if code, body := do(t, http.MethodPost, srv.URL+"/restart", ""); code != http.StatusConflict {
		t.Fatalf("restart after close = %d: %s", code, body)
	}
}
