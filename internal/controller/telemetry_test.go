package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// TestSupervisorTelemetryCompletedFailover pins the recovery accounting: a
// crash-and-recover cycle must count one completed failover, observe its
// duration, and trace one completed failover event whose value equals the
// logged DetectedAt→RecoveredAt span.
func TestSupervisorTelemetryCompletedFailover(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	inst, err := cl.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(cloud.DefaultLaunchDelay)
	reg := telemetry.NewRegistry()
	sup := NewSupervisor(SupervisorConfig{Cloud: cl, Clock: clk, FailThreshold: 2, Telemetry: reg})
	sup.Manage("T", "oregon", inst.ID, InstanceCheck(cl), func(context.Context, string) error { return nil })

	if err := cl.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 45 && len(sup.Events()) == 0; i++ {
		sup.Tick()
		clk.Advance(time.Second)
	}
	events := sup.Events()
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("events = %+v, want one clean failover", events)
	}

	snap := reg.Snapshot()
	if snap.Counters[MetricFailoversDone] != 1 {
		t.Fatalf("done counter = %d, want 1", snap.Counters[MetricFailoversDone])
	}
	if snap.Counters[MetricFailoversAbandoned] != 0 {
		t.Fatal("abandoned counter advanced on a clean recovery")
	}
	wantDur := events[0].RecoveredAt.Sub(events[0].DetectedAt).Nanoseconds()
	h := snap.Histograms[MetricFailoverNs]
	if h.Count != 1 || h.Sum != wantDur {
		t.Fatalf("duration histogram count=%d sum=%d, want 1/%d", h.Count, h.Sum, wantDur)
	}
	rec := reg.Recorder(SupervisorFlightName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventFailover)
	if len(evs) != 1 || evs[0].Value != wantDur || evs[0].Node != "T" {
		t.Fatalf("recorder failover events = %+v, want value %d at node T", evs, wantDur)
	}
}

// TestSupervisorTelemetryRetriesAndAbandon pins the retry path: with the
// region out of capacity, every scheduled relaunch traces a retry event and
// the final abandonment is counted and marked with a negative value so it
// never masquerades as a completed recovery.
func TestSupervisorTelemetryRetriesAndAbandon(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	inst, err := cl.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(cloud.DefaultLaunchDelay)
	reg := telemetry.NewRegistry()
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Second, MaxDelay: 8 * time.Second}
	sup := NewSupervisor(SupervisorConfig{Cloud: cl, Clock: clk, Retry: retry, FailThreshold: 2, Telemetry: reg})
	sup.Manage("T", "oregon", inst.ID, InstanceCheck(cl), func(context.Context, string) error { return nil })

	cl.FailLaunches("oregon", 100)
	if err := cl.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60 && len(sup.Events()) == 0; i++ {
		sup.Tick()
		clk.Advance(time.Second)
	}
	if len(sup.Events()) != 1 || sup.Events()[0].Err == nil {
		t.Fatalf("events = %+v, want one abandoned failover", sup.Events())
	}

	snap := reg.Snapshot()
	if snap.Counters[MetricFailoversAbandoned] != 1 {
		t.Fatalf("abandoned counter = %d, want 1", snap.Counters[MetricFailoversAbandoned])
	}
	if snap.Counters[MetricFailoversDone] != 0 {
		t.Fatal("done counter advanced on an abandoned failover")
	}
	// Attempts 2 and 3 are scheduled retries (attempt 1 fires immediately
	// on detection).
	if got := snap.Counters[MetricRetryAttempts]; got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
	rec := reg.Recorder(SupervisorFlightName, telemetry.DefaultRecorderCapacity)
	retries := rec.EventsOf(telemetry.EventRetry)
	if len(retries) != 2 {
		t.Fatalf("retry events = %d, want 2", len(retries))
	}
	failovers := rec.EventsOf(telemetry.EventFailover)
	if len(failovers) != 1 || failovers[0].Value >= 0 {
		t.Fatalf("abandoned failover events = %+v, want one with negative value", failovers)
	}
}

// TestTimedPushObservesLatency pins the push-latency path: a successful
// TimedPush lands one observation in the registry's histogram, stamped by
// the supplied clock.
func TestTimedPushObservesLatency(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	d := NewDaemon(n.Host("node"), nil)
	defer d.Close()

	client, server := net.Pipe()
	defer client.Close()
	go func() {
		_ = ServeControlStream(server, d, nil)
		server.Close()
	}()

	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msg := &Message{
		Signal:   NCSettings,
		Settings: &dataplane.SessionConfig{ID: 1, Params: smallParams(), Role: dataplane.RoleForwarder},
	}
	if err := TimedPush(ctx, client, reg, nil, msg); err != nil {
		t.Fatal(err)
	}
	h := reg.Snapshot().Histograms[MetricPushNs]
	if h.Count != 1 {
		t.Fatalf("push histogram count = %d, want 1", h.Count)
	}
	if h.Sum < 0 {
		t.Fatalf("push latency sum = %d", h.Sum)
	}

	// Nil registry is the uninstrumented fast path — still pushes.
	if err := TimedPush(ctx, client, nil, nil, &Message{Signal: NCStart}); err != nil {
		t.Fatal(err)
	}
}
