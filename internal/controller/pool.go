package controller

import (
	"fmt"
	"sort"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

// vnfPool manages the VNF (VM) instances of one data center with the
// paper's τ-delayed shutdown: after NC_VNF_END a VNF stays alive for τ and
// can be reused if traffic returns, saving the ~35 s relaunch cost
// (Sec. III-A and V-C5).
type vnfPool struct {
	dc    topology.NodeID
	cloud *cloud.Cloud
	clock simclock.Clock
	tau   time.Duration
	retry RetryPolicy

	// active instances are serving traffic.
	active []string
	// idle maps instance ID to its shutdown deadline.
	idle map[string]time.Time
	// reused counts idle VNFs brought back within τ.
	reused int
	// launchRetries counts launch attempts beyond the first.
	launchRetries int
}

func newVNFPool(dc topology.NodeID, cl *cloud.Cloud, clk simclock.Clock, tau time.Duration, retry RetryPolicy) *vnfPool {
	return &vnfPool{
		dc:    dc,
		cloud: cl,
		clock: clk,
		tau:   tau,
		retry: retry.withDefaults(),
		idle:  make(map[string]time.Time),
	}
}

// launch starts one VM, retrying transient provider failures up to the
// policy's attempt budget. Retries here are immediate — the pool is called
// with the controller mutex held, so it must not sleep; backoff-paced
// relaunches of whole VNFs are the Supervisor's job.
func (p *vnfPool) launch() (*cloud.Instance, error) {
	var last error
	for attempt := 1; attempt <= p.retry.MaxAttempts; attempt++ {
		inst, err := p.cloud.LaunchInstance(p.dc)
		if err == nil {
			return inst, nil
		}
		last = err
		if attempt < p.retry.MaxAttempts {
			p.launchRetries++
		}
	}
	return nil, fmt.Errorf("%w: launch in %s (%d attempts): %v", ErrRetriesExhausted, p.dc, p.retry.MaxAttempts, last)
}

// ensure scales the pool to n active instances. Scale-out prefers reusing
// idle instances (cancelling their shutdown) before launching new VMs;
// scale-in marks instances idle with deadline now+τ. It returns the number
// of fresh launches requested.
func (p *vnfPool) ensure(n int) (launched int, err error) {
	// Scale out.
	for len(p.active) < n {
		if id, ok := p.popNewestIdle(); ok {
			p.active = append(p.active, id)
			p.reused++
			continue
		}
		inst, lerr := p.launch()
		if lerr != nil {
			return launched, lerr
		}
		p.active = append(p.active, inst.ID)
		launched++
	}
	// Scale in.
	now := p.clock.Now()
	for len(p.active) > n {
		id := p.active[len(p.active)-1]
		p.active = p.active[:len(p.active)-1]
		p.idle[id] = now.Add(p.tau)
	}
	return launched, nil
}

// popNewestIdle reuses the idle instance with the latest deadline (the one
// most recently idled).
func (p *vnfPool) popNewestIdle() (string, bool) {
	var best string
	var bestAt time.Time
	for id, at := range p.idle {
		if best == "" || at.After(bestAt) {
			best, bestAt = id, at
		}
	}
	if best == "" {
		return "", false
	}
	delete(p.idle, best)
	return best, true
}

// reap terminates idle instances whose τ deadline has passed, returning
// how many were shut down.
func (p *vnfPool) reap() int {
	now := p.clock.Now()
	var expired []string
	for id, deadline := range p.idle {
		if !now.Before(deadline) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		delete(p.idle, id)
		// Termination of an unknown instance cannot happen here; ignore
		// the impossible error rather than aborting the reap pass.
		_ = p.cloud.TerminateInstance(id)
	}
	return len(expired)
}

// counts returns (active, idle) instance counts.
func (p *vnfPool) counts() (int, int) {
	return len(p.active), len(p.idle)
}

// instances returns the active instance IDs.
func (p *vnfPool) instances() []string {
	return append([]string(nil), p.active...)
}
