package controller

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

// Errors.
var (
	ErrUnknownSession = errors.New("controller: unknown session")
	ErrDuplicate      = errors.New("controller: duplicate session")
)

// Config configures the controller.
type Config struct {
	// Optimize carries the graph, candidate data centers, and α.
	Optimize optimize.Config
	// Cloud is the VM provider used to launch/terminate VNF instances.
	Cloud *cloud.Cloud
	// Clock drives τ timers and threshold windows.
	Clock simclock.Clock
	// Tau is the idle-VNF shutdown delay (default 10 min, Sec. V-C).
	Tau time.Duration
	// Tau1/Rho1 confirm bandwidth changes (Alg. 1): a change must exceed
	// Rho1 (fraction) and persist Tau1 before the controller reacts.
	Tau1 time.Duration
	Rho1 float64
	// Tau2/Rho2 confirm delay changes (Alg. 2).
	Tau2 time.Duration
	Rho2 float64
	// Retry bounds cloud launch attempts (zero fields take the defaults of
	// DefaultRetryPolicy).
	Retry RetryPolicy
}

// DefaultTau matches the evaluation's 10-minute threshold values.
const DefaultTau = 10 * time.Minute

// sessionFlows is the adopted routing state of one session.
type sessionFlows struct {
	session optimize.Session
	rate    float64
	links   map[[2]topology.NodeID]float64
	paths   []optimize.PathFlow
}

// SignalEvent records one control signal the controller emitted, for the
// experiment harness and for audit logs.
type SignalEvent struct {
	At     time.Time
	Signal Signal
	DC     topology.NodeID
	Detail string
}

// pendingChange tracks a not-yet-confirmed bandwidth or delay observation.
type pendingChange struct {
	since time.Time
	inM   float64
	outM  float64
	delay time.Duration
}

// Controller is the central control plane.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	flows        map[ncproto.SessionID]*sessionFlows
	pools        map[topology.NodeID]*vnfPool
	pendingBW    map[topology.NodeID]*pendingChange
	pendingDelay map[[2]topology.NodeID]*pendingChange
	events       []SignalEvent
}

// New builds a controller. The optimize config's DataCenters define the
// candidate deployment sites; a pool is created for each.
func New(cfg Config) *Controller {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Tau <= 0 {
		cfg.Tau = DefaultTau
	}
	if cfg.Tau1 <= 0 {
		cfg.Tau1 = DefaultTau
	}
	if cfg.Tau2 <= 0 {
		cfg.Tau2 = DefaultTau
	}
	if cfg.Rho1 <= 0 {
		cfg.Rho1 = 0.05
	}
	if cfg.Rho2 <= 0 {
		cfg.Rho2 = 0.05
	}
	c := &Controller{
		cfg:          cfg,
		flows:        make(map[ncproto.SessionID]*sessionFlows),
		pools:        make(map[topology.NodeID]*vnfPool),
		pendingBW:    make(map[topology.NodeID]*pendingChange),
		pendingDelay: make(map[[2]topology.NodeID]*pendingChange),
	}
	for _, dc := range cfg.Optimize.DataCenters {
		c.pools[dc.ID] = newVNFPool(dc.ID, cfg.Cloud, cfg.Clock, cfg.Tau, cfg.Retry)
	}
	return c
}

// record appends a signal event.
func (c *Controller) record(sig Signal, dc topology.NodeID, detail string) {
	c.events = append(c.events, SignalEvent{
		At:     c.cfg.Clock.Now(),
		Signal: sig,
		DC:     dc,
		Detail: detail,
	})
}

// Events returns a copy of the emitted signal log.
func (c *Controller) Events() []SignalEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SignalEvent(nil), c.events...)
}

// Sessions returns the active session IDs.
func (c *Controller) Sessions() []ncproto.SessionID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ncproto.SessionID, 0, len(c.flows))
	for id := range c.flows {
		out = append(out, id)
	}
	return out
}

// TotalThroughput returns Σ λ_m over active sessions.
func (c *Controller) TotalThroughput() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalRateLocked()
}

func (c *Controller) totalRateLocked() float64 {
	total := 0.0
	for _, f := range c.flows {
		total += f.rate
	}
	return total
}

// EffectiveThroughput estimates the rate actually delivered given the data
// centers' true per-VNF inbound bandwidth, which can differ from what the
// controller believes between a bandwidth change and its confirmed reaction
// (Alg. 1 waits ρ1/τ1 before acting). Each session is throttled by the
// most-overloaded data center its flows enter; with no overload it equals
// TotalThroughput.
func (c *Controller) EffectiveThroughput(actual func(dc topology.NodeID) (inMbps, outMbps float64)) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	load := c.loadLocked(nil)
	factor := make(map[topology.NodeID]float64, len(c.pools))
	ratio := func(capacity, used float64) float64 {
		if used <= 0 {
			return 1
		}
		f := capacity / used
		if f > 1 {
			f = 1
		}
		if f < 0 {
			f = 0
		}
		return f
	}
	for dc, p := range c.pools {
		active, _ := p.counts()
		in, out := actual(dc)
		fIn := ratio(in*float64(active), load.DCInMbps[dc])
		fOut := ratio(out*float64(active), load.DCOutMbps[dc])
		if fOut < fIn {
			factor[dc] = fOut
		} else {
			factor[dc] = fIn
		}
	}
	total := 0.0
	for _, sf := range c.flows {
		f := 1.0
		for e, mbps := range sf.links {
			if mbps <= 0 {
				continue
			}
			if df, ok := factor[e[1]]; ok && df < f {
				f = df
			}
			if df, ok := factor[e[0]]; ok && df < f {
				f = df
			}
		}
		total += sf.rate * f
	}
	return total
}

// LoadPerDC returns the aggregate inbound and outbound Mbps each data
// center currently relays (the scaling experiments use it to pick "a
// currently used data center" for bandwidth cuts).
func (c *Controller) LoadPerDC() (in, out map[topology.NodeID]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	load := c.loadLocked(nil)
	return load.DCInMbps, load.DCOutMbps
}

// SessionRate returns λ_m of one session.
func (c *Controller) SessionRate(id ncproto.SessionID) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.flows[id]
	if !ok {
		return 0, false
	}
	return f.rate, true
}

// VNFCounts returns the total (active, idle-within-τ) VNF counts.
func (c *Controller) VNFCounts() (active, idle int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vnfCountsLocked()
}

func (c *Controller) vnfCountsLocked() (active, idle int) {
	for _, p := range c.pools {
		a, i := p.counts()
		active += a
		idle += i
	}
	return active, idle
}

// ActiveVNFsPerDC returns the per-data-center active VNF counts.
func (c *Controller) ActiveVNFsPerDC() map[topology.NodeID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[topology.NodeID]int, len(c.pools))
	for dc, p := range c.pools {
		a, _ := p.counts()
		out[dc] = a
	}
	return out
}

// Instances returns the active instance IDs in one data center.
func (c *Controller) Instances(dc topology.NodeID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[dc]
	if !ok {
		return nil
	}
	return p.instances()
}

// Tick reaps idle VNFs whose τ deadline has passed. Call it periodically
// (the experiments call it at every measurement interval).
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for dc, p := range c.pools {
		if n := p.reap(); n > 0 {
			c.record(NCVNFEnd, dc, fmt.Sprintf("terminated %d idle VNFs after tau", n))
		}
	}
}

// objectiveLocked computes Σλ − α·activeVNFs for the adopted state.
func (c *Controller) objectiveLocked() float64 {
	active, _ := c.vnfCountsLocked()
	return c.totalRateLocked() - c.cfg.Optimize.Alpha*float64(active)
}

// baseVNFsLocked snapshots active pool sizes for scale-out solves.
func (c *Controller) baseVNFsLocked() map[topology.NodeID]int {
	out := make(map[topology.NodeID]int, len(c.pools))
	for dc, p := range c.pools {
		a, _ := p.counts()
		out[dc] = a
	}
	return out
}

// loadLocked aggregates adopted flows, excluding the given sessions.
func (c *Controller) loadLocked(exclude map[ncproto.SessionID]bool) *optimize.Load {
	load := optimize.NewLoad()
	dcSet := make(map[topology.NodeID]bool, len(c.pools))
	for dc := range c.pools {
		dcSet[dc] = true
	}
	for id, f := range c.flows {
		if exclude[id] {
			continue
		}
		for e, mbps := range f.links {
			if mbps <= 0 {
				continue
			}
			load.LinkMbps[e] += mbps
			if dcSet[e[1]] {
				load.DCInMbps[e[1]] += mbps
			}
			if dcSet[e[0]] {
				load.DCOutMbps[e[0]] += mbps
			}
		}
	}
	return load
}

// adoptPlanLocked merges a solved plan for the given sessions into the
// controller state and scales pools to the plan's VNF counts.
func (c *Controller) adoptPlanLocked(plan *optimize.Plan, sessions []optimize.Session) error {
	for _, s := range sessions {
		sf := &sessionFlows{
			session: s,
			rate:    plan.Rates[s.ID],
			links:   plan.LinkFlows[s.ID],
		}
		for _, pf := range plan.PathFlows {
			if pf.Session == s.ID {
				sf.paths = append(sf.paths, pf)
			}
		}
		c.flows[s.ID] = sf
	}
	return c.scalePoolsLocked(plan.VNFs)
}

// scalePoolsLocked sets each pool's active size, emitting signals.
func (c *Controller) scalePoolsLocked(target map[topology.NodeID]int) error {
	for dc, p := range c.pools {
		want := target[dc]
		a, _ := p.counts()
		if want == a {
			continue
		}
		launched, err := p.ensure(want)
		if err != nil {
			return fmt.Errorf("controller: scale %s to %d: %w", dc, want, err)
		}
		if want > a {
			c.record(NCVNFStart, dc, fmt.Sprintf("scale out to %d (launched %d, reused %d)", want, launched, want-a-launched))
		} else {
			c.record(NCVNFEnd, dc, fmt.Sprintf("scale in to %d (idle until tau)", want))
		}
		c.record(NCForwardTab, dc, "forwarding table update")
	}
	return nil
}

// rightSizeLocked shrinks pools to the minimum VNF counts required by the
// adopted flows (used after departures; extra instances idle until τ).
func (c *Controller) rightSizeLocked() error {
	min := optimize.MinVNFs(c.cfg.Optimize.DataCenters, c.loadLocked(nil))
	return c.scalePoolsLocked(min)
}

// AddSession admits a new multicast session (Alg. 3, SESSION JOIN):
// program (2) is solved for the new session only, pinning the flows of
// existing sessions and treating the current deployment as already paid.
func (c *Controller) AddSession(s optimize.Session) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.flows[s.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicate, s.ID)
	}
	cfg := c.cfg.Optimize
	cfg.BaseVNFs = c.baseVNFsLocked()
	cfg.PinnedLoad = c.loadLocked(nil)
	plan, err := optimize.Solve(cfg, []optimize.Session{s})
	if err != nil {
		return fmt.Errorf("controller: admit session %d: %w", s.ID, err)
	}
	c.record(NCStart, "", fmt.Sprintf("session %d admitted at %.1f Mbps", s.ID, plan.Rates[s.ID]))
	c.record(NCSettings, "", fmt.Sprintf("session %d settings pushed", s.ID))
	return c.adoptPlanLocked(plan, []optimize.Session{s})
}

// RemoveSession ends a session (Alg. 3, SESSION/RECEIVER QUIT): the
// controller compares raising the remaining sessions' rates on the current
// deployment (g1) against retaining current rates on fewer VNFs (g2) and
// applies the better.
func (c *Controller) RemoveSession(id ncproto.SessionID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.flows[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	delete(c.flows, id)
	c.record(NCSettings, "", fmt.Sprintf("session %d ended", id))
	return c.afterDepartureLocked()
}

// afterDepartureLocked implements the g1-vs-g2 comparison of Alg. 3.
func (c *Controller) afterDepartureLocked() error {
	remaining := make([]optimize.Session, 0, len(c.flows))
	for _, f := range c.flows {
		remaining = append(remaining, f.session)
	}
	if len(remaining) == 0 {
		return c.scalePoolsLocked(nil)
	}
	alpha := c.cfg.Optimize.Alpha

	// g1: rates re-optimized on the existing deployment.
	cfg1 := c.cfg.Optimize
	cfg1.BaseVNFs = c.baseVNFsLocked()
	plan1, err1 := optimize.Solve(cfg1, remaining)

	// g2: rates unchanged, deployment shrunk to the minimum.
	min := optimize.MinVNFs(c.cfg.Optimize.DataCenters, c.loadLocked(nil))
	totalMin := 0
	for _, n := range min {
		totalMin += n
	}
	g2 := c.totalRateLocked() - alpha*float64(totalMin)

	if err1 == nil {
		g1 := plan1.TotalRate() - alpha*float64(plan1.TotalVNFs())
		if g1 > g2 {
			return c.adoptPlanLocked(plan1, remaining)
		}
	}
	return c.scalePoolsLocked(min)
}

// AddReceiver joins a receiver to a session (Alg. 3, RECEIVER JOIN): the
// affected session is re-solved on the current deployment with other
// sessions pinned.
func (c *Controller) AddReceiver(id ncproto.SessionID, r topology.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.flows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	s := f.session
	s.Receivers = append(append([]topology.NodeID(nil), s.Receivers...), r)
	return c.resolveSessionLocked(s)
}

// RemoveReceiver removes a receiver from a session.
func (c *Controller) RemoveReceiver(id ncproto.SessionID, r topology.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.flows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	s := f.session
	var kept []topology.NodeID
	for _, have := range s.Receivers {
		if have != r {
			kept = append(kept, have)
		}
	}
	if len(kept) == len(s.Receivers) {
		return fmt.Errorf("controller: session %d has no receiver %s", id, r)
	}
	if len(kept) == 0 {
		delete(c.flows, id)
		return c.afterDepartureLocked()
	}
	s.Receivers = kept
	if err := c.resolveSessionLocked(s); err != nil {
		return err
	}
	// A departed receiver may free capacity; right-size the deployment
	// (freed VNFs idle until τ, then shut down).
	return c.rightSizeLocked()
}

// resolveSessionLocked re-solves one session with everything else pinned
// and adopts the result.
func (c *Controller) resolveSessionLocked(s optimize.Session) error {
	cfg := c.cfg.Optimize
	cfg.BaseVNFs = c.baseVNFsLocked()
	cfg.PinnedLoad = c.loadLocked(map[ncproto.SessionID]bool{s.ID: true})
	plan, err := optimize.Solve(cfg, []optimize.Session{s})
	if err != nil {
		return fmt.Errorf("controller: re-solve session %d: %w", s.ID, err)
	}
	return c.adoptPlanLocked(plan, []optimize.Session{s})
}

// ObserveBandwidth feeds one bandwidth measurement for a data center's VNFs
// (Alg. 1). The change is acted on only after exceeding ρ1 and persisting
// for τ1. For confirmed increases the controller adopts the re-solved plan
// only when the objective improves; confirmed drops always force a re-solve
// (flows must shrink to what the VNFs can carry).
func (c *Controller) ObserveBandwidth(dc topology.NodeID, inMbps, outMbps float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := -1
	for i := range c.cfg.Optimize.DataCenters {
		if c.cfg.Optimize.DataCenters[i].ID == dc {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("controller: unknown data center %s", dc)
	}
	cur := c.cfg.Optimize.DataCenters[idx]
	relIn := relChange(cur.BinMbps, inMbps)
	relOut := relChange(cur.BoutMbps, outMbps)
	if relIn <= c.cfg.Rho1 && relOut <= c.cfg.Rho1 {
		delete(c.pendingBW, dc)
		return nil
	}
	now := c.cfg.Clock.Now()
	p, ok := c.pendingBW[dc]
	if !ok {
		c.pendingBW[dc] = &pendingChange{since: now, inM: inMbps, outM: outMbps}
		return nil
	}
	p.inM, p.outM = inMbps, outMbps
	if now.Sub(p.since) < c.cfg.Tau1 {
		return nil
	}
	delete(c.pendingBW, dc)
	dropped := inMbps < cur.BinMbps || outMbps < cur.BoutMbps
	c.cfg.Optimize.DataCenters[idx].BinMbps = inMbps
	c.cfg.Optimize.DataCenters[idx].BoutMbps = outMbps
	return c.reactToChangeLocked(dropped, fmt.Sprintf("bandwidth change at %s", dc))
}

// ObserveDelay feeds one link-delay measurement (Alg. 2). Confirmed changes
// update the graph and trigger a re-solve: increases can invalidate paths
// (forcing adoption), decreases expand the feasible path set (adopted only
// if the objective improves).
func (c *Controller) ObserveDelay(from, to topology.NodeID, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	link, ok := c.cfg.Optimize.Graph.Link(from, to)
	if !ok {
		return fmt.Errorf("controller: unknown link %s->%s", from, to)
	}
	rel := relChange(link.Delay.Seconds(), d.Seconds())
	key := [2]topology.NodeID{from, to}
	if rel <= c.cfg.Rho2 {
		delete(c.pendingDelay, key)
		return nil
	}
	now := c.cfg.Clock.Now()
	p, ok := c.pendingDelay[key]
	if !ok {
		c.pendingDelay[key] = &pendingChange{since: now, delay: d}
		return nil
	}
	p.delay = d
	if now.Sub(p.since) < c.cfg.Tau2 {
		return nil
	}
	delete(c.pendingDelay, key)
	increased := d > link.Delay
	if err := c.cfg.Optimize.Graph.SetDelay(from, to, d); err != nil {
		return err
	}
	return c.reactToChangeLocked(increased, fmt.Sprintf("delay change on %s->%s", from, to))
}

// reactToChangeLocked re-solves all sessions on the current deployment and
// adopts the result if forced (capacity shrank / paths broke) or if the
// objective improves — the "if g > current objective value then scale out"
// comparison of Alg. 1.
func (c *Controller) reactToChangeLocked(forced bool, why string) error {
	sessions := make([]optimize.Session, 0, len(c.flows))
	for _, f := range c.flows {
		sessions = append(sessions, f.session)
	}
	if len(sessions) == 0 {
		return nil
	}
	cfg := c.cfg.Optimize
	cfg.BaseVNFs = c.baseVNFsLocked()
	plan, err := optimize.Solve(cfg, sessions)
	if err != nil {
		return fmt.Errorf("controller: react to %s: %w", why, err)
	}
	g := plan.TotalRate() - c.cfg.Optimize.Alpha*float64(plan.TotalVNFs())
	if !forced && g <= c.objectiveLocked() {
		c.record(NCSettings, "", fmt.Sprintf("%s: keeping current plan (objective %.1f <= %.1f)", why, g, c.objectiveLocked()))
		return nil
	}
	c.record(NCForwardTab, "", why)
	if err := c.adoptPlanLocked(plan, sessions); err != nil {
		return err
	}
	if forced {
		// Capacity shrank: drop VNFs the smaller flows no longer need.
		return c.rightSizeLocked()
	}
	return nil
}

// relChange returns |new-old| / old, treating old == 0 as a full change.
func relChange(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(cur-old) / math.Abs(old)
}
