package controller

import (
	"bytes"
	"sync"
	"testing"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// recordConn captures every Send in order; Recv blocks until Close (tests
// drive the VNF synchronously through InjectPacket).
type recordConn struct {
	addr  string
	mu    sync.Mutex
	dsts  []string
	pkts  [][]byte
	close chan struct{}
	once  sync.Once
}

func newRecordConn(addr string) *recordConn {
	return &recordConn{addr: addr, close: make(chan struct{})}
}

func (c *recordConn) Send(dst string, pkt []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dsts = append(c.dsts, dst)
	c.pkts = append(c.pkts, append([]byte(nil), pkt...))
	return nil
}

func (c *recordConn) Recv() ([]byte, string, error) {
	<-c.close
	return nil, "", emunet.ErrClosed
}

func (c *recordConn) LocalAddr() string { return c.addr }

func (c *recordConn) Close() error {
	c.once.Do(func() { close(c.close) })
	return nil
}

func (c *recordConn) emissions() ([]string, [][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.dsts...), append([][]byte(nil), c.pkts...)
}

// diffDeploy builds the two deploy-file versions of the differential: the
// same forwarder session on node "relay", with the forwarding table flipped
// from sink-a to sink-b between version 1 and version 2.
func diffDeploy(sink string, version int) *DeployFile {
	return &DeployFile{
		Version: version,
		Sessions: []DeploySession{{
			ID: 1, Blocks: 4, BlockSize: 64,
			Roles:  map[string]string{"relay": "forwarder"},
			Tables: map[string][]DeployHopGroup{"relay": {{Addrs: []string{sink}}}},
		}},
		Daemons: map[string]string{"relay": "relay:1"},
	}
}

// diffTrace pre-encodes the fixed packet trace both runs inject: four
// generations of k+1 coded packets each, deterministic payload and
// coefficients.
func diffTrace(t *testing.T) [][]byte {
	t.Helper()
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 64, Field: gf.GF256}
	var trace [][]byte
	for g := 0; g < 4; g++ {
		data := make([]byte, params.GenerationBytes())
		for i := range data {
			data[i] = byte(i*13 + g*7 + 5)
		}
		enc, err := rlnc.NewEncoder(params, data, int64(g+1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < params.GenerationBlocks+1; i++ {
			cb := enc.Coded()
			trace = append(trace, (&ncproto.Packet{
				Session:    1,
				Generation: ncproto.GenerationID(g),
				Coeffs:     cb.Coeffs,
				Payload:    cb.Payload,
			}).Encode(nil))
		}
	}
	return trace
}

// TestReloadDifferentialColdRestart pins the hot-reload guarantee of the
// operational-lifecycle tentpole with the PR 7 differential pattern: a
// forwarding-table change applied by /reload's Daemon.Reload mid-trace must
// deliver the byte-identical emission sequence (destination + wire bytes) as
// tearing the daemon down at the same trace position and cold-starting a
// replacement from the version-2 deploy file — while the hot path records
// zero pause events, leaves the pause histogram empty, and performs the
// whole diff in exactly one RCU table swap without touching the session.
func TestReloadDifferentialColdRestart(t *testing.T) {
	trace := diffTrace(t)
	cut := len(trace) / 2 // generation boundary: 2 of 4 generations before the switch
	f1, f2 := diffDeploy("sink-a", 1), diffDeploy("sink-b", 2)

	boot := func(conn *recordConn, f *DeployFile, reg *telemetry.Registry) *Daemon {
		t.Helper()
		d := NewDaemon(conn, simclock.NewVirtual(epoch), dataplane.WithTelemetry(reg))
		msgs, err := f.NodeMessages("relay")
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			mustApply(t, d, m)
		}
		return d
	}

	// Hot path: one daemon, Reload(v2) between the two trace halves.
	hotReg := telemetry.NewRegistry()
	hotConn := newRecordConn("relay")
	hot := boot(hotConn, f1, hotReg)
	defer hot.Close()
	for _, pkt := range trace[:cut] {
		hot.VNF().InjectPacket(pkt)
	}
	swapsBefore := hot.TableSwaps()
	sum, err := hot.Reload(f2, "relay")
	if err != nil {
		t.Fatal(err)
	}
	if sum.SessionsUpdated != 0 || sum.SessionsAdded != 0 || sum.SessionsRemoved != 0 {
		t.Fatalf("table-only reload touched sessions: %+v", sum)
	}
	if sum.TableEntriesChanged != 1 || hot.TableSwaps() != swapsBefore+1 {
		t.Fatalf("reload swaps: %+v (table swaps %d -> %d)", sum, swapsBefore, hot.TableSwaps())
	}
	for _, pkt := range trace[cut:] {
		hot.VNF().InjectPacket(pkt)
	}
	hotDst, hotPkt := hotConn.emissions()

	// Cold path: same trace position, but the daemon is torn down and a
	// replacement cold-starts from the version-2 file.
	coldReg := telemetry.NewRegistry()
	conn1 := newRecordConn("relay")
	cold1 := boot(conn1, f1, coldReg)
	for _, pkt := range trace[:cut] {
		cold1.VNF().InjectPacket(pkt)
	}
	if err := cold1.Close(); err != nil {
		t.Fatal(err)
	}
	conn2 := newRecordConn("relay")
	cold2 := boot(conn2, f2, telemetry.NewRegistry())
	defer cold2.Close()
	for _, pkt := range trace[cut:] {
		cold2.VNF().InjectPacket(pkt)
	}
	d1, p1 := conn1.emissions()
	d2, p2 := conn2.emissions()
	coldDst, coldPkt := append(d1, d2...), append(p1, p2...)

	if len(hotDst) == 0 {
		t.Fatal("trace produced no emissions")
	}
	if len(hotDst) != len(coldDst) {
		t.Fatalf("emission count differs: hot-reload %d, cold restart %d", len(hotDst), len(coldDst))
	}
	for i := range hotDst {
		if hotDst[i] != coldDst[i] {
			t.Fatalf("emission %d destination differs: hot-reload %q, cold restart %q", i, hotDst[i], coldDst[i])
		}
		if !bytes.Equal(hotPkt[i], coldPkt[i]) {
			t.Fatalf("emission %d bytes differ between hot-reload and cold restart", i)
		}
	}
	// The trace actually crossed the table flip: sink-a before, sink-b after.
	if hotDst[0] != "sink-a" || hotDst[len(hotDst)-1] != "sink-b" {
		t.Fatalf("trace never crossed the flip: first %q last %q", hotDst[0], hotDst[len(hotDst)-1])
	}

	// Zero-pause proof for the hot path: no pause/resume flight events, an
	// empty pause histogram, and the swap counted on the RCU counter.
	rec := hotReg.Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if p, r := rec.EventsOf(telemetry.EventPause), rec.EventsOf(telemetry.EventResume); len(p) != 0 || len(r) != 0 {
		t.Fatalf("hot reload recorded %d pause / %d resume events, want 0/0", len(p), len(r))
	}
	if got := hotReg.Histogram(dataplane.MetricTableSwapNs).Count(); got != 0 {
		t.Fatalf("hot reload pause histogram count = %d, want 0", got)
	}
	if evs := rec.EventsOf(telemetry.EventReload); len(evs) != 1 {
		t.Fatalf("reload flight events = %d, want 1", len(evs))
	}
}
