package controller

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

// DefaultDrainDeadline bounds a drain that never quiesces (a wedged shard,
// a conn that keeps delivering admitted-generation traffic): the daemon
// closes anyway once it expires.
const DefaultDrainDeadline = 30 * time.Second

// AdminConfig wires a daemon's admin HTTP endpoint.
type AdminConfig struct {
	// Daemon is the node's control agent; required for /drain, /reload and
	// /restart (nil serves /stats only).
	Daemon *Daemon
	// Registry backs /stats (required).
	Registry *telemetry.Registry
	// Node is this daemon's logical name; /reload diffs the deploy file's
	// view of this node against the live VNF.
	Node string
	// Peers, when non-nil, receives the peer bindings of reloaded deploy
	// files, exactly as ServeControlStream registers the bindings of
	// control messages.
	Peers *emunet.Registry
	// DrainDeadline is the drain deadline when a request names none;
	// zero selects DefaultDrainDeadline.
	DrainDeadline time.Duration
	// Restart, when non-nil, enables POST /restart: it runs after the
	// restart's drain completed and the daemon closed (cmd/ncd re-execs
	// itself here). Nil answers /restart with 501.
	Restart func()
}

// NewAdminMux builds the admin endpoint: the observability routes (/stats,
// /debug/vars, /debug/pprof) plus the operational lifecycle routes —
// /drain (POST to start a graceful drain, GET for drain status), /reload
// (POST a deploy file to hot-apply its diff), and /restart (POST to drain
// and then hand off to a fresh process). See PROTOCOL.md §5.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	if cfg.DrainDeadline <= 0 {
		cfg.DrainDeadline = DefaultDrainDeadline
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		raw, err := cfg.Registry.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	})
	if cfg.Daemon != nil {
		mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) { handleDrain(cfg, w, r) })
		mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) { handleReload(cfg, w, r) })
		mux.HandleFunc("/restart", func(w http.ResponseWriter, r *http.Request) { handleRestart(cfg, w, r) })
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin serves the admin endpoint on ln until the listener closes.
func ServeAdmin(ln net.Listener, cfg AdminConfig) {
	srv := &http.Server{Handler: NewAdminMux(cfg), ReadHeaderTimeout: 5 * time.Second}
	_ = srv.Serve(ln)
}

// drainStatus is the GET /drain (and POST /drain response) document.
type drainStatus struct {
	// State is the drain state machine position: running | draining |
	// quiesced.
	State string `json:"state"`
	// Draining reports whether a drain (or restart) is in progress.
	Draining bool `json:"draining"`
	// Version is the last applied deploy-file version (see /reload).
	Version int `json:"version"`
}

// drainStateName maps the dataplane drain gauge values to wire names.
func drainStateName(s int64) string {
	switch s {
	case dataplane.DrainStateDraining:
		return "draining"
	case dataplane.DrainStateQuiesced:
		return "quiesced"
	default:
		return "running"
	}
}

// statusOf snapshots the daemon's lifecycle position.
func statusOf(d *Daemon) drainStatus {
	return drainStatus{
		State:    drainStateName(d.VNF().DrainState()),
		Draining: d.Draining(),
		Version:  d.DeployVersion(),
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// lifecycleStatus maps drain/reload errors onto HTTP statuses: lifecycle
// conflicts (double drain, reload-while-draining, stale version, closed
// daemon) are 409s, config problems are 400s.
func lifecycleStatus(err error) int {
	switch {
	case errors.Is(err, ErrAlreadyDraining), errors.Is(err, ErrStaleVersion), errors.Is(err, ErrDaemonClosed):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// drainDeadline reads the request's ?deadline=<duration> override.
func drainDeadline(cfg AdminConfig, r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("deadline")
	if raw == "" {
		return cfg.DrainDeadline, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad deadline %q", raw)
	}
	return d, nil
}

// handleDrain serves /drain: GET reports the drain status, POST starts a
// graceful drain (409 when one is already in progress).
func handleDrain(cfg AdminConfig, w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, statusOf(cfg.Daemon))
	case http.MethodPost:
		deadline, err := drainDeadline(cfg, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := cfg.Daemon.StartDrain(deadline); err != nil {
			http.Error(w, err.Error(), lifecycleStatus(err))
			return
		}
		writeJSON(w, http.StatusOK, statusOf(cfg.Daemon))
	default:
		http.Error(w, "drain: GET or POST", http.StatusMethodNotAllowed)
	}
}

// maxDeployFile bounds a /reload request body.
const maxDeployFile = 16 << 20

// handleReload serves POST /reload: the body is a deploy file; its diff
// against the node's live state is hot-applied (Daemon.Reload) and the
// summary returned. 400 on malformed or invalid files, 409 on lifecycle
// conflicts (draining, stale version).
func handleReload(cfg AdminConfig, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "reload: POST a deploy file", http.StatusMethodNotAllowed)
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxDeployFile))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f, err := ParseDeployFile(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if cfg.Peers != nil {
		for peer, addr := range f.Peers {
			udpAddr, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				http.Error(w, fmt.Sprintf("resolve peer %s=%s: %v", peer, addr, err), http.StatusBadRequest)
				return
			}
			cfg.Peers.Register(peer, udpAddr)
		}
	}
	sum, err := cfg.Daemon.Reload(f, cfg.Node)
	if err != nil {
		http.Error(w, err.Error(), lifecycleStatus(err))
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleRestart serves POST /restart: drain, and once the drain completes
// (quiesced or deadline) and the daemon closes, run the configured restart
// hook — cmd/ncd's exec handoff into a fresh process on the same addresses.
func handleRestart(cfg AdminConfig, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "restart: POST", http.StatusMethodNotAllowed)
		return
	}
	if cfg.Restart == nil {
		http.Error(w, "restart: not supported by this daemon", http.StatusNotImplemented)
		return
	}
	deadline, err := drainDeadline(cfg, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := cfg.Daemon.startDrain(deadline, cfg.Restart); err != nil {
		http.Error(w, err.Error(), lifecycleStatus(err))
		return
	}
	writeJSON(w, http.StatusOK, statusOf(cfg.Daemon))
}
