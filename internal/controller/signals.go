// Package controller implements the control plane of Sec. III-A and the
// dynamic deployment and scaling algorithms of Sec. IV-B.
//
// A central controller computes coding-function deployments by solving
// program (2) (package optimize), launches and recycles VNFs (VMs) through
// the cloud API with the paper's τ-delayed shutdown for reuse, and pushes
// per-session settings and forwarding tables to daemons running beside each
// coding function. The controller reacts to bandwidth variation (Alg. 1),
// delay changes (Alg. 2), and session/receiver churn (Alg. 3).
package controller

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/ncproto"
)

// Signal is a control-plane message type (Sec. III-A's signal list).
type Signal int

// The five control signals of Sec. III-A.
const (
	// NCStart starts network-coding-enabled transmission for a session.
	NCStart Signal = iota + 1
	// NCVNFStart launches new VNFs (VMs) in a data center.
	NCVNFStart
	// NCVNFEnd informs a VNF it is no longer used; the daemon shuts the
	// VM down after τ, allowing reuse if demand returns.
	NCVNFEnd
	// NCForwardTab pushes a forwarding-table update.
	NCForwardTab
	// NCSettings delivers per-session VNF roles, session IDs, UDP ports,
	// and generation/block sizes.
	NCSettings
	// NCSessionEnd removes one session's configuration and coding state
	// without touching the rest of the VNF — the per-session half of
	// NCVNFEnd, used by deploy-file hot-reloads to retire sessions a new
	// config no longer names.
	NCSessionEnd
)

// String names the signal using the paper's identifiers.
func (s Signal) String() string {
	switch s {
	case NCStart:
		return "NC_START"
	case NCVNFStart:
		return "NC_VNF_START"
	case NCVNFEnd:
		return "NC_VNF_END"
	case NCForwardTab:
		return "NC_FORWARD_TAB"
	case NCSettings:
		return "NC_SETTINGS"
	case NCSessionEnd:
		return "NC_SESSION_END"
	default:
		return "NC_UNKNOWN"
	}
}

// Message is one controller→daemon control message.
type Message struct {
	Signal Signal `json:"signal"`
	// Session applies to NCStart and session-scoped settings.
	Session ncproto.SessionID `json:"session,omitempty"`
	// Settings carries NCSettings payloads.
	Settings *dataplane.SessionConfig `json:"settings,omitempty"`
	// Table carries NCForwardTab payloads: nil hop slices delete entries.
	Table map[ncproto.SessionID][]dataplane.HopGroup `json:"table,omitempty"`
	// NumVNFs is how many VNFs NCVNFStart requests.
	NumVNFs int `json:"numVNFs,omitempty"`
	// ShutdownAfter is τ for NCVNFEnd.
	ShutdownAfter time.Duration `json:"shutdownAfterNs,omitempty"`
	// Peers carries logical-name → UDP-address bindings for deployments
	// over real sockets (cmd/ncd resolves forwarding-table names through
	// them).
	Peers map[string]string `json:"peers,omitempty"`
}

// Encode frames the message as length-prefixed JSON for a control stream.
func (m *Message) Encode(w io.Writer) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("controller: encode message: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("controller: write frame: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("controller: write frame: %w", err)
	}
	return nil
}

// maxFrame bounds control message size (forwarding tables are tiny).
const maxFrame = 16 << 20

// DecodeMessage reads one length-prefixed message from a control stream.
func DecodeMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("controller: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("controller: read frame: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("controller: decode message: %w", err)
	}
	return &m, nil
}
