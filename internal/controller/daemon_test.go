package controller

import (
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

func testDaemon(t *testing.T) (*Daemon, *simclock.Virtual, *emunet.Network) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	clk := simclock.NewVirtual(epoch)
	d := NewDaemon(n.Host("node"), clk)
	t.Cleanup(func() { d.Close() })
	return d, clk, n
}

// mustApply fails the test if a setup signal the scenario depends on is
// rejected by the daemon.
func mustApply(t *testing.T, d *Daemon, m *Message) {
	t.Helper()
	if err := d.Apply(m); err != nil {
		t.Fatalf("Apply(%v): %v", m.Signal, err)
	}
}

func smallParams() rlnc.Params {
	return rlnc.Params{GenerationBlocks: 4, BlockSize: 64}
}

func TestDaemonSettingsAndStart(t *testing.T) {
	d, _, _ := testDaemon(t)
	cfg := dataplane.SessionConfig{ID: 1, Params: smallParams(), Role: dataplane.RoleRecoder}
	if err := d.Apply(&Message{Signal: NCSettings, Settings: &cfg}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(&Message{Signal: NCStart}); err != nil {
		t.Fatal(err)
	}
	if d.Applied() != 2 || d.LastSignal() != NCStart {
		t.Fatalf("applied=%d last=%v", d.Applied(), d.LastSignal())
	}
}

func TestDaemonSettingsRequired(t *testing.T) {
	d, _, _ := testDaemon(t)
	if err := d.Apply(&Message{Signal: NCSettings}); err == nil {
		t.Fatal("NC_SETTINGS without payload accepted")
	}
	if err := d.Apply(&Message{Signal: Signal(42)}); err == nil {
		t.Fatal("unknown signal accepted")
	}
}

func TestDaemonForwardTab(t *testing.T) {
	d, _, _ := testDaemon(t)
	mustApply(t, d, &Message{Signal: NCStart})
	err := d.Apply(&Message{
		Signal: NCForwardTab,
		Table:  map[ncproto.SessionID][]dataplane.HopGroup{1: {{Addrs: []string{"next"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.TableSwaps() != 1 {
		t.Fatalf("TableSwaps = %d", d.TableSwaps())
	}
	if d.VNF().Table().NextHops(1, 0)[0] != "next" {
		t.Fatal("table not applied")
	}
}

func TestDaemonTauShutdown(t *testing.T) {
	d, clk, _ := testDaemon(t)
	mustApply(t, d, &Message{Signal: NCStart})
	if err := d.Apply(&Message{Signal: NCVNFEnd, ShutdownAfter: 10 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if d.Closed() {
		t.Fatal("daemon closed before tau")
	}
	clk.Advance(11 * time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for !d.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("daemon did not shut down after tau")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDaemonReuseCancelsShutdown(t *testing.T) {
	d, clk, _ := testDaemon(t)
	mustApply(t, d, &Message{Signal: NCStart})
	mustApply(t, d, &Message{Signal: NCVNFEnd, ShutdownAfter: 10 * time.Minute})
	// Demand returns within τ: NC_START cancels the pending shutdown.
	clk.Advance(5 * time.Minute)
	if err := d.Apply(&Message{Signal: NCStart}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if d.Closed() {
		t.Fatal("reused daemon shut down anyway")
	}
}

func TestDaemonApplyAfterClose(t *testing.T) {
	d, _, _ := testDaemon(t)
	d.Close()
	if err := d.Apply(&Message{Signal: NCStart}); err == nil {
		t.Fatal("apply after close accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestDaemonVNFStartNoop(t *testing.T) {
	d, _, _ := testDaemon(t)
	if err := d.Apply(&Message{Signal: NCVNFStart, NumVNFs: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildNodePlansButterfly(t *testing.T) {
	g, src, dsts := topology.Butterfly()
	cfg := optimize.Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:       0.1,
		MaxPathHops: 4,
	}
	sessions := []optimize.Session{{
		ID: 1, Source: src, Receivers: dsts, MaxDelay: 150 * time.Millisecond,
	}}
	plan, err := optimize.Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	params := smallParams()
	plans, err := BuildNodePlans(params, 0, sessions, plan, func(dc topology.NodeID) []string {
		return []string{string(dc) + "/vnf0"}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Source plan: two hop groups (O1, C1) with quota 2 each.
	srcPlan := plans[src]
	if srcPlan == nil {
		t.Fatal("no plan for source")
	}
	hops := SourceHops(plans, src, 1)
	if len(hops) != 2 {
		t.Fatalf("source hop groups = %d, want 2", len(hops))
	}
	for _, h := range hops {
		if h.PerGen != 2 {
			t.Fatalf("source quota = %d, want 2 (35/70 of 4 blocks)", h.PerGen)
		}
	}
	// T merges two branches: recoder with InPerGen 4 and outbound quota 2.
	tp := plans["T"]
	if tp == nil {
		t.Fatal("no plan for T")
	}
	tc := tp.Sessions[1]
	if tc.Role != dataplane.RoleRecoder {
		t.Fatalf("T role = %v, want recoder", tc.Role)
	}
	if tc.InPerGen != 4 {
		t.Fatalf("T InPerGen = %d, want 4", tc.InPerGen)
	}
	if tg := tp.Table[1]; len(tg) != 1 || tg[0].PerGen != 2 {
		t.Fatalf("T out = %+v", tg)
	}
	if tg := tp.Table[1]; tg[0].Addrs[0] != "V2/vnf0" {
		t.Fatalf("T next hop = %v", tg[0].Addrs)
	}
	// Receivers decode.
	for _, r := range dsts {
		rp := plans[r]
		if rp == nil || rp.Sessions[1].Role != dataplane.RoleDecoder {
			t.Fatalf("receiver %s not a decoder", r)
		}
	}
}

func TestBuildNodePlansMissingInstances(t *testing.T) {
	g, src, dsts := topology.Butterfly()
	cfg := optimize.Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:       0.1,
		MaxPathHops: 4,
	}
	sessions := []optimize.Session{{
		ID: 1, Source: src, Receivers: dsts, MaxDelay: 150 * time.Millisecond,
	}}
	plan, err := optimize.Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildNodePlans(smallParams(), 0, sessions, plan, func(topology.NodeID) []string {
		return nil
	}); err == nil {
		t.Fatal("missing instances accepted")
	}
}

func TestSourceHopsUnknown(t *testing.T) {
	if hops := SourceHops(nil, "x", 1); hops != nil {
		t.Fatal("unknown source returned hops")
	}
}

func TestBuildNodePlansSkipsZeroRate(t *testing.T) {
	plan := &optimize.Plan{
		Rates:     map[ncproto.SessionID]float64{1: 0},
		LinkFlows: map[ncproto.SessionID]map[[2]topology.NodeID]float64{},
	}
	plans, err := BuildNodePlans(smallParams(), 0, []optimize.Session{{ID: 1, Source: "s"}}, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 0 {
		t.Fatal("zero-rate session produced plans")
	}
}
