package controller

import (
	"fmt"
	"math"
	"sort"

	"ncfn/internal/dataplane"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/topology"
)

// NodePlan is everything one network node (source, data center VNF, or
// receiver) needs to participate in the deployed sessions: its per-session
// settings (NC_SETTINGS) and forwarding table (NC_FORWARD_TAB).
type NodePlan struct {
	Node     topology.NodeID
	Sessions map[ncproto.SessionID]dataplane.SessionConfig
	Table    map[ncproto.SessionID][]dataplane.HopGroup
}

// BuildNodePlans converts an optimizer plan into per-node directives. The
// instancesOf callback maps a data center to the network addresses of its
// running VNF instances (one hop group dispatches generations across them);
// sources and receivers resolve to their own node ID as address.
//
// Per-hop packet quotas follow the conceptual-flow solution: a link
// carrying f_m(e) of a session with rate λ_m receives
// round(k · f_m(e) / λ_m) of the k coded packets of each generation, plus
// `redundancy` extra coded packets per hop (the NC1/NC2 configurations of
// Figs. 8 and 9 add one or two redundant packets per coding node).
func BuildNodePlans(params rlnc.Params, redundancy int, sessions []optimize.Session, plan *optimize.Plan, instancesOf func(topology.NodeID) []string) (map[topology.NodeID]*NodePlan, error) {
	plans := make(map[topology.NodeID]*NodePlan)
	get := func(n topology.NodeID) *NodePlan {
		if p, ok := plans[n]; ok {
			return p
		}
		p := &NodePlan{
			Node:     n,
			Sessions: make(map[ncproto.SessionID]dataplane.SessionConfig),
			Table:    make(map[ncproto.SessionID][]dataplane.HopGroup),
		}
		plans[n] = p
		return p
	}
	k := params.GenerationBlocks

	for _, s := range sessions {
		flows := plan.LinkFlows[s.ID]
		rate := plan.Rates[s.ID]
		if rate <= 0 || len(flows) == 0 {
			continue
		}
		recvSet := make(map[topology.NodeID]bool, len(s.Receivers))
		for _, r := range s.Receivers {
			recvSet[r] = true
		}
		// Group edges by their tail node and compute quotas.
		outEdges := make(map[topology.NodeID][][2]topology.NodeID)
		inQuota := make(map[topology.NodeID]int)
		quota := func(e [2]topology.NodeID) int {
			q := int(math.Round(float64(k) * flows[e] / rate))
			if q < 1 {
				q = 1
			}
			if q > k {
				q = k
			}
			return q + redundancy
		}
		for e, mbps := range flows {
			if mbps <= 0 {
				continue
			}
			outEdges[e[0]] = append(outEdges[e[0]], e)
			inQuota[e[1]] += quota(e)
		}
		// Receivers must be able to decode: their inbound quotas need to
		// cover the generation. The conceptual-flow solution guarantees
		// Σ f ≥ λ per receiver, so Σ round(k·f/λ) ≥ k up to rounding;
		// bump the largest in-edge if rounding fell short.
		// (Handled implicitly: round() of the exact solution sums to ≥ k
		// in all but pathological cases; validated below.)
		for _, r := range s.Receivers {
			if inQuota[r] < k+redundancy {
				return nil, fmt.Errorf("controller: session %d receiver %s has inbound quota %d < %d; plan too fractional",
					s.ID, r, inQuota[r], k)
			}
		}

		for node, edges := range outEdges {
			sort.Slice(edges, func(i, j int) bool { return edges[i][1] < edges[j][1] })
			np := get(node)
			var hops []dataplane.HopGroup
			for _, e := range edges {
				dst := e[1]
				var addrs []string
				if recvSet[dst] {
					addrs = []string{string(dst)}
				} else {
					addrs = instancesOf(dst)
					if len(addrs) == 0 {
						return nil, fmt.Errorf("controller: session %d routes through %s, but it has no running VNF instances", s.ID, dst)
					}
				}
				hops = append(hops, dataplane.HopGroup{Addrs: addrs, PerGen: quota(e)})
			}
			np.Table[s.ID] = hops
			if node == s.Source {
				continue // the source encodes; no SessionConfig needed
			}
			// A relay with a single incoming flow and no rate compression
			// can simply forward (Sec. IV-A: "In the case where only one
			// flow of a session arrives at a data center, direct
			// forwarding is sufficient and coding is unnecessary").
			role := dataplane.RoleRecoder
			inEdges := 0
			for e := range flows {
				if e[1] == node {
					inEdges++
				}
			}
			if inEdges == 1 {
				compress := false
				for _, e := range edges {
					if quota(e) < inQuota[node] {
						compress = true
					}
				}
				if !compress {
					role = dataplane.RoleForwarder
				}
			}
			np.Sessions[s.ID] = dataplane.SessionConfig{
				ID:         s.ID,
				Params:     params,
				Role:       role,
				Redundancy: redundancy,
				InPerGen:   inQuota[node],
			}
		}
		// Receivers decode.
		for _, r := range s.Receivers {
			np := get(r)
			np.Sessions[s.ID] = dataplane.SessionConfig{
				ID:     s.ID,
				Params: params,
				Role:   dataplane.RoleDecoder,
			}
		}
	}
	return plans, nil
}

// SourceHops extracts the hop groups the session's source should use from
// a node-plan set.
func SourceHops(plans map[topology.NodeID]*NodePlan, src topology.NodeID, id ncproto.SessionID) []dataplane.HopGroup {
	np, ok := plans[src]
	if !ok {
		return nil
	}
	return np.Table[id]
}
