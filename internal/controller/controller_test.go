package controller

import (
	"bytes"
	"testing"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

var epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

// testEnv builds a controller over the butterfly with a virtual clock.
func testEnv(alpha float64) (*Controller, *simclock.Virtual, *cloud.Cloud) {
	g, _, _ := topology.Butterfly()
	clk := simclock.NewVirtual(epoch)
	regions := []cloud.Region{
		{ID: "O1", Provider: "ec2", BaseInMbps: 1000, BaseOutMbps: 1000, LaunchDelay: time.Second},
		{ID: "C1", Provider: "ec2", BaseInMbps: 1000, BaseOutMbps: 1000, LaunchDelay: time.Second},
		{ID: "T", Provider: "ec2", BaseInMbps: 1000, BaseOutMbps: 1000, LaunchDelay: time.Second},
		{ID: "V2", Provider: "ec2", BaseInMbps: 1000, BaseOutMbps: 1000, LaunchDelay: time.Second},
	}
	cl := cloud.New(clk, 7, regions...)
	cfg := Config{
		Optimize: optimize.Config{
			Graph: g,
			DataCenters: []optimize.DataCenter{
				{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
				{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
				{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
				{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			},
			Alpha:       alpha,
			MaxPathHops: 4,
		},
		Cloud: cl,
		Clock: clk,
		Tau:   10 * time.Minute,
		Tau1:  10 * time.Minute,
		Tau2:  10 * time.Minute,
		Rho1:  0.05,
		Rho2:  0.05,
	}
	return New(cfg), clk, cl
}

func butterflySession(id int) optimize.Session {
	return optimize.Session{
		ID:        ncSessionID(id),
		Source:    "V1",
		Receivers: []topology.NodeID{"O2", "C2"},
		MaxDelay:  150 * time.Millisecond,
	}
}

// The must* helpers keep test setup terse while failing fast if a call the
// scenario depends on errors out.
func mustAddSession(t *testing.T, c *Controller, s optimize.Session) {
	t.Helper()
	if err := c.AddSession(s); err != nil {
		t.Fatalf("AddSession(%v): %v", s.ID, err)
	}
}

func mustRemoveSession(t *testing.T, c *Controller, id ncproto.SessionID) {
	t.Helper()
	if err := c.RemoveSession(id); err != nil {
		t.Fatalf("RemoveSession(%v): %v", id, err)
	}
}

func mustObserveBandwidth(t *testing.T, c *Controller, dc topology.NodeID, inMbps, outMbps float64) {
	t.Helper()
	if err := c.ObserveBandwidth(dc, inMbps, outMbps); err != nil {
		t.Fatalf("ObserveBandwidth(%v): %v", dc, err)
	}
}

func mustObserveDelay(t *testing.T, c *Controller, from, to topology.NodeID, d time.Duration) {
	t.Helper()
	if err := c.ObserveDelay(from, to, d); err != nil {
		t.Fatalf("ObserveDelay(%v->%v): %v", from, to, err)
	}
}

func TestAddSessionDeploysAndRates(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.AddSession(butterflySession(1)); err != nil {
		t.Fatal(err)
	}
	rate, ok := c.SessionRate(1)
	if !ok || rate < 69 {
		t.Fatalf("rate = %v, %v; want ~70", rate, ok)
	}
	active, idle := c.VNFCounts()
	if active != 4 || idle != 0 {
		t.Fatalf("VNFs = %d active, %d idle; want 4, 0", active, idle)
	}
}

func TestAddSessionDuplicate(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.AddSession(butterflySession(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSession(butterflySession(1)); err == nil {
		t.Fatal("duplicate session accepted")
	}
}

func TestRemoveSessionScalesIn(t *testing.T) {
	c, clk, cl := testEnv(1)
	if err := c.AddSession(butterflySession(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveSession(1); err != nil {
		t.Fatal(err)
	}
	active, idle := c.VNFCounts()
	if active != 0 {
		t.Fatalf("active = %d after last session removed", active)
	}
	if idle != 4 {
		t.Fatalf("idle = %d, want 4 (waiting out tau)", idle)
	}
	// After τ the idle VNFs are terminated.
	clk.Advance(11 * time.Minute)
	c.Tick()
	if _, idle := c.VNFCounts(); idle != 0 {
		t.Fatalf("idle = %d after tau", idle)
	}
	running := cl.RunningInstances()
	for dc, n := range running {
		if n != 0 {
			t.Fatalf("%s still has %d running instances", dc, n)
		}
	}
}

func TestRemoveUnknownSession(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.RemoveSession(99); err == nil {
		t.Fatal("unknown session removed")
	}
}

func TestTauReuseAvoidsRelaunch(t *testing.T) {
	c, clk, cl := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	launchesBefore := totalLaunches(cl)
	mustRemoveSession(t, c, 1)
	// Demand returns within τ: the idle VNFs must be reused, not
	// relaunched.
	clk.Advance(5 * time.Minute)
	if err := c.AddSession(butterflySession(2)); err != nil {
		t.Fatal(err)
	}
	if got := totalLaunches(cl); got != launchesBefore {
		t.Fatalf("launches grew %d -> %d despite idle VNFs within tau", launchesBefore, got)
	}
	active, _ := c.VNFCounts()
	if active != 4 {
		t.Fatalf("active = %d, want 4", active)
	}
}

func totalLaunches(cl *cloud.Cloud) int {
	n := 0
	for _, dc := range cl.Regions() {
		n += cl.Launches(dc)
	}
	return n
}

func TestSecondSessionSharesCapacity(t *testing.T) {
	c, _, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	if err := c.AddSession(butterflySession(2)); err != nil {
		t.Fatal(err)
	}
	r1, _ := c.SessionRate(1)
	r2, _ := c.SessionRate(2)
	// Session 1's flows are pinned, so session 2 gets leftovers (~0 on
	// the saturated butterfly).
	if r1 < 69 {
		t.Fatalf("pinned session rate dropped to %v", r1)
	}
	if r1+r2 > 71 {
		t.Fatalf("combined rate %v exceeds capacity", r1+r2)
	}
}

func TestAddRemoveReceiver(t *testing.T) {
	c, _, _ := testEnv(1)
	s := optimize.Session{
		ID:        1,
		Source:    "V1",
		Receivers: []topology.NodeID{"O2"},
		MaxDelay:  150 * time.Millisecond,
	}
	if err := c.AddSession(s); err != nil {
		t.Fatal(err)
	}
	r1, _ := c.SessionRate(1)
	if err := c.AddReceiver(1, "C2"); err != nil {
		t.Fatal(err)
	}
	r2, _ := c.SessionRate(1)
	if r2 <= 0 || r2 > r1+1e-3 {
		t.Fatalf("rate after receiver join = %v (was %v)", r2, r1)
	}
	if err := c.RemoveReceiver(1, "C2"); err != nil {
		t.Fatal(err)
	}
	r3, _ := c.SessionRate(1)
	if r3 < r2-1e-3 {
		t.Fatalf("rate after receiver leave = %v (was %v)", r3, r2)
	}
	if err := c.RemoveReceiver(1, "nope"); err == nil {
		t.Fatal("unknown receiver removed")
	}
	if err := c.AddReceiver(9, "C2"); err == nil {
		t.Fatal("receiver added to unknown session")
	}
}

func TestRemoveLastReceiverEndsSession(t *testing.T) {
	c, _, _ := testEnv(1)
	s := optimize.Session{
		ID: 1, Source: "V1",
		Receivers: []topology.NodeID{"O2"},
		MaxDelay:  150 * time.Millisecond,
	}
	mustAddSession(t, c, s)
	if err := c.RemoveReceiver(1, "O2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.SessionRate(1); ok {
		t.Fatal("session survived losing its only receiver")
	}
}

func TestBandwidthDropConfirmedAfterTau1(t *testing.T) {
	c, clk, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	before, _ := c.SessionRate(1)

	// A 50% inbound cut at T. First observation: pending only.
	if err := c.ObserveBandwidth("T", 17, 1000); err != nil {
		t.Fatal(err)
	}
	mid, _ := c.SessionRate(1)
	if mid != before {
		t.Fatal("controller reacted before tau1")
	}
	// Confirmed after τ1.
	clk.Advance(11 * time.Minute)
	if err := c.ObserveBandwidth("T", 17, 1000); err != nil {
		t.Fatal(err)
	}
	after, _ := c.SessionRate(1)
	// One VNF at T now carries only 17 Mbps inbound; the T->V2 branch is
	// throttled, so either more VNFs are deployed or the rate drops.
	if after > before+1e-3 {
		t.Fatalf("rate rose after bandwidth cut: %v -> %v", before, after)
	}
	vnfs := c.ActiveVNFsPerDC()
	if after >= before-1e-3 && vnfs["T"] < 2 {
		t.Fatalf("rate kept at %v but T has only %d VNFs", after, vnfs["T"])
	}
}

func TestBandwidthSpikeIgnored(t *testing.T) {
	c, clk, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	// Spike: large change observed once, then back to normal.
	mustObserveBandwidth(t, c, "T", 17, 1000)
	clk.Advance(2 * time.Minute)
	mustObserveBandwidth(t, c, "T", 1000, 1000) // back within ρ of nominal
	clk.Advance(20 * time.Minute)
	mustObserveBandwidth(t, c, "T", 17, 1000) // new change, pending restarts
	rate, _ := c.SessionRate(1)
	if rate < 69 {
		t.Fatalf("spike caused a reaction: rate %v", rate)
	}
}

func TestBandwidthSmallChangeClearsPending(t *testing.T) {
	c, clk, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	mustObserveBandwidth(t, c, "T", 900, 1000) // >5% change, pending
	clk.Advance(11 * time.Minute)
	mustObserveBandwidth(t, c, "T", 990, 1000) // back within 5%: pending cleared
	clk.Advance(11 * time.Minute)
	mustObserveBandwidth(t, c, "T", 900, 1000) // pending restarts; not confirmed
	rate, _ := c.SessionRate(1)
	if rate < 69 {
		t.Fatalf("unconfirmed change caused reaction: %v", rate)
	}
}

func TestObserveBandwidthUnknownDC(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.ObserveBandwidth("mars", 1, 1); err == nil {
		t.Fatal("unknown DC accepted")
	}
}

func TestDelayIncreaseReroutes(t *testing.T) {
	c, clk, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	before, _ := c.SessionRate(1)
	// Delay on T->V2 explodes past every session's Lmax, killing the
	// long branch. Confirm after τ2.
	mustObserveDelay(t, c, "T", "V2", 500*time.Millisecond)
	clk.Advance(11 * time.Minute)
	if err := c.ObserveDelay("T", "V2", 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after, _ := c.SessionRate(1)
	if after >= before {
		t.Fatalf("rate did not drop after losing the coded branch: %v -> %v", before, after)
	}
	if after < 30 {
		t.Fatalf("rate %v collapsed; side branches should still carry ~35", after)
	}
}

func TestDelayDecreaseOnlyAdoptedIfBetter(t *testing.T) {
	c, clk, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	before, _ := c.SessionRate(1)
	mustObserveDelay(t, c, "T", "V2", 6*time.Millisecond) // faster link
	clk.Advance(11 * time.Minute)
	if err := c.ObserveDelay("T", "V2", 6*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after, _ := c.SessionRate(1)
	if after < before-1e-6 {
		t.Fatalf("delay drop reduced rate: %v -> %v", before, after)
	}
}

func TestObserveDelayUnknownLink(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.ObserveDelay("x", "y", time.Millisecond); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestEventsRecorded(t *testing.T) {
	c, _, _ := testEnv(1)
	mustAddSession(t, c, butterflySession(1))
	events := c.Events()
	var sawStart, sawVNFStart bool
	for _, e := range events {
		if e.Signal == NCStart {
			sawStart = true
		}
		if e.Signal == NCVNFStart {
			sawVNFStart = true
		}
	}
	if !sawStart || !sawVNFStart {
		t.Fatalf("missing signals in event log: %+v", events)
	}
}

func TestSignalStrings(t *testing.T) {
	names := map[Signal]string{
		NCStart:      "NC_START",
		NCVNFStart:   "NC_VNF_START",
		NCVNFEnd:     "NC_VNF_END",
		NCForwardTab: "NC_FORWARD_TAB",
		NCSettings:   "NC_SETTINGS",
		Signal(0):    "NC_UNKNOWN",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %s, want %s", int(s), s, want)
		}
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := &Message{
		Signal:  NCForwardTab,
		Session: 4,
		NumVNFs: 2,
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signal != m.Signal || got.Session != m.Session || got.NumVNFs != m.NumVNFs {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	if _, err := DecodeMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeMessage(bytes.NewReader([]byte{0, 0, 0, 10, 1})); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestDecodeMessageOversized(t *testing.T) {
	if _, err := DecodeMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// ncSessionID keeps session ID literals readable in table construction.
func ncSessionID(id int) ncproto.SessionID { return ncproto.SessionID(id) }

func TestAccessorsAndEffectiveThroughput(t *testing.T) {
	c, _, _ := testEnv(1)
	if err := c.AddSession(butterflySession(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Sessions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Sessions = %v", got)
	}
	if tp := c.TotalThroughput(); tp < 69 {
		t.Fatalf("TotalThroughput = %v", tp)
	}
	if inst := c.Instances("T"); len(inst) != 1 {
		t.Fatalf("Instances(T) = %v", inst)
	}
	if inst := c.Instances("mars"); inst != nil {
		t.Fatal("unknown DC returned instances")
	}
	in, out := c.LoadPerDC()
	if in["T"] < 30 || out["T"] < 30 {
		t.Fatalf("LoadPerDC T = %v in / %v out, want ~35", in["T"], out["T"])
	}

	// With nominal bandwidth the effective rate equals the planned rate.
	full := c.EffectiveThroughput(func(topology.NodeID) (float64, float64) { return 1000, 1000 })
	if full < 69 {
		t.Fatalf("effective at nominal = %v", full)
	}
	// Halving T's actual bandwidth below its ~35 Mbps load throttles the
	// session through it.
	cut := c.EffectiveThroughput(func(dc topology.NodeID) (float64, float64) {
		if dc == "T" {
			return 17, 17
		}
		return 1000, 1000
	})
	if cut >= full {
		t.Fatalf("effective with cut %v not below nominal %v", cut, full)
	}
	// Zero capacity everywhere floors the estimate at zero.
	if z := c.EffectiveThroughput(func(topology.NodeID) (float64, float64) { return 0, 0 }); z != 0 {
		t.Fatalf("effective at zero capacity = %v", z)
	}
}

func TestConfigDefaults(t *testing.T) {
	// New must fill every zero threshold with the evaluation defaults.
	c := New(Config{})
	if c.cfg.Tau != DefaultTau || c.cfg.Tau1 != DefaultTau || c.cfg.Tau2 != DefaultTau {
		t.Fatalf("tau defaults: %+v", c.cfg)
	}
	if c.cfg.Rho1 != 0.05 || c.cfg.Rho2 != 0.05 {
		t.Fatalf("rho defaults: %+v", c.cfg)
	}
	if c.cfg.Clock == nil {
		t.Fatal("clock default missing")
	}
}

func TestRelChange(t *testing.T) {
	if relChange(0, 0) != 0 {
		t.Fatal("0->0 should be no change")
	}
	if relChange(0, 5) != 1 {
		t.Fatal("0->x should be a full change")
	}
	if got := relChange(100, 90); got < 0.099 || got > 0.101 {
		t.Fatalf("relChange(100,90) = %v", got)
	}
	if got := relChange(100, 110); got < 0.099 || got > 0.101 {
		t.Fatalf("relChange(100,110) = %v", got)
	}
}

func TestDepartureKeepsRatesWhenRaisingIsWorthless(t *testing.T) {
	// Two sessions saturate the butterfly; session 2 holds ~0 rate. When
	// session 2 leaves, raising session 1 is impossible (it already has
	// the full 70), so the controller takes the g2 branch: retain rates,
	// keep the minimum deployment.
	c, _, _ := testEnv(5)
	mustAddSession(t, c, butterflySession(1))
	mustAddSession(t, c, butterflySession(2))
	before, _ := c.SessionRate(1)
	if before < 69 {
		t.Fatalf("session 1 rate = %v, want ~70", before)
	}
	if err := c.RemoveSession(2); err != nil {
		t.Fatal(err)
	}
	after, _ := c.SessionRate(1)
	if after < before-1 {
		t.Fatalf("survivor's rate dropped: %v -> %v", before, after)
	}
	active, _ := c.VNFCounts()
	if active != 4 {
		t.Fatalf("active VNFs = %d after departure, want 4", active)
	}
}
