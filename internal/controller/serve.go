package controller

import (
	"fmt"
	"io"
	"net"

	"ncfn/internal/emunet"
)

// ServeControlStream applies a controller's message stream (length-prefixed
// JSON, as produced by Message.Encode) to a daemon until the stream ends or
// the daemon shuts down. Peer bindings in messages are registered in the
// given UDP name registry (nil to ignore them). Each applied message is
// acknowledged with a single 0x06 byte. cmd/ncd serves every accepted
// control connection through this function.
func ServeControlStream(c net.Conn, d *Daemon, registry *emunet.Registry) error {
	for {
		msg, err := DecodeMessage(c)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if registry != nil {
			for peer, addr := range msg.Peers {
				udpAddr, err := net.ResolveUDPAddr("udp", addr)
				if err != nil {
					return fmt.Errorf("controller: resolve peer %s=%s: %w", peer, addr, err)
				}
				registry.Register(peer, udpAddr)
			}
		}
		if err := d.Apply(msg); err != nil {
			return err
		}
		if _, err := c.Write([]byte{0x06}); err != nil {
			return fmt.Errorf("controller: write ack: %w", err)
		}
		if d.Closed() {
			return nil
		}
	}
}
