package controller

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"ncfn/internal/emunet"
)

// DefaultPushTimeout bounds a table/settings push when the caller's context
// carries no deadline. Table III measures table updates completing in tens
// of milliseconds; ten seconds is generous for any healthy daemon, so a
// push that exceeds it indicates a dead peer, not a slow one.
const DefaultPushTimeout = 10 * time.Second

// PushMessages sends control messages to a daemon over its TCP control
// connection and waits for the daemon's one-byte ack after each — the
// client half of ServeControlStream. The exchange is bounded by ctx: its
// deadline (or DefaultPushTimeout from now, when it has none) is installed
// as the connection deadline, and cancelling ctx aborts an in-flight push.
// A push to a crashed daemon therefore fails quickly instead of blocking
// the control plane forever.
func PushMessages(ctx context.Context, conn net.Conn, msgs ...*Message) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(DefaultPushTimeout)
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return fmt.Errorf("controller: set push deadline: %w", err)
	}
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	stop := context.AfterFunc(ctx, func() {
		// Wake any blocked read/write immediately on cancellation.
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	ack := make([]byte, 1)
	for _, m := range msgs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := m.Encode(conn); err != nil {
			return fmt.Errorf("controller: push: %w", err)
		}
		if _, err := io.ReadFull(conn, ack); err != nil {
			return fmt.Errorf("controller: await push ack: %w", err)
		}
	}
	return nil
}

// ServeControlStream applies a controller's message stream (length-prefixed
// JSON, as produced by Message.Encode) to a daemon until the stream ends or
// the daemon shuts down. Peer bindings in messages are registered in the
// given UDP name registry (nil to ignore them). Each applied message is
// acknowledged with a single 0x06 byte. cmd/ncd serves every accepted
// control connection through this function.
func ServeControlStream(c net.Conn, d *Daemon, registry *emunet.Registry) error {
	for {
		msg, err := DecodeMessage(c)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if registry != nil {
			for peer, addr := range msg.Peers {
				udpAddr, err := net.ResolveUDPAddr("udp", addr)
				if err != nil {
					return fmt.Errorf("controller: resolve peer %s=%s: %w", peer, addr, err)
				}
				registry.Register(peer, udpAddr)
			}
		}
		if err := d.Apply(msg); err != nil {
			return err
		}
		if _, err := c.Write([]byte{0x06}); err != nil {
			return fmt.Errorf("controller: write ack: %w", err)
		}
		if d.Closed() {
			return nil
		}
	}
}
