package controller

import (
	"errors"
	"fmt"
	"time"
)

// Drain / reload error taxonomy. The admin endpoint maps these onto HTTP
// statuses (409 for lifecycle conflicts), and ncctl prints them verbatim.
var (
	// ErrAlreadyDraining rejects a second drain (or a reload) on a daemon
	// whose drain is already in progress.
	ErrAlreadyDraining = errors.New("controller: daemon already draining")
	// ErrDaemonClosed rejects lifecycle operations on a closed daemon.
	ErrDaemonClosed = errors.New("controller: daemon closed")
	// ErrStaleVersion rejects a reload whose deploy-file version is not
	// newer than the version already applied.
	ErrStaleVersion = errors.New("controller: stale deploy version")
)

// StartDrain moves the daemon into graceful drain: the VNF stops admitting
// new sessions and new generations (dataplane.VNF.Drain), in-flight
// generations keep flushing, and a background waiter closes the daemon once
// the pipeline quiesces — or when the deadline expires, whichever comes
// first. The call itself returns immediately; progress is observable
// through the dataplane_drain_* instruments and Closed.
//
// While draining, NC_SETTINGS and NC_START messages are refused, so a
// racing controller cannot re-open a daemon that is on its way out.
func (d *Daemon) StartDrain(deadline time.Duration) error {
	return d.startDrain(deadline, nil)
}

// startDrain is StartDrain with an optional hook that runs after the drain
// completed and the daemon closed (the /restart exec handoff).
func (d *Daemon) startDrain(deadline time.Duration, onClosed func()) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrDaemonClosed
	}
	if d.draining {
		d.mu.Unlock()
		return ErrAlreadyDraining
	}
	d.draining = true
	d.mu.Unlock()
	d.vnf.Drain()
	go func() {
		d.vnf.WaitQuiesced(deadline)
		_ = d.Close()
		if onClosed != nil {
			onClosed()
		}
	}()
	return nil
}

// Draining reports whether StartDrain has been called.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// DeployVersion returns the version of the last deploy file applied by
// Reload (zero before any versioned reload).
func (d *Daemon) DeployVersion() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deployVersion
}

// checkReloadable admits or refuses a reload under the daemon lock:
// lifecycle conflicts first, then version monotonicity. On success the new
// version is claimed immediately, so two racing reloads of the same
// versioned file cannot both apply.
func (d *Daemon) checkReloadable(version int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDaemonClosed
	}
	if d.draining {
		return fmt.Errorf("%w: reload refused", ErrAlreadyDraining)
	}
	if version != 0 {
		if version <= d.deployVersion {
			return fmt.Errorf("%w: have %d, got %d", ErrStaleVersion, d.deployVersion, version)
		}
		d.deployVersion = version
	}
	return nil
}
