package controller

import (
	"fmt"
	"sync"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/simclock"
)

// Daemon is the per-node control agent of Sec. III-A: "a daemon program
// runs on each network coding node". It owns the node's VNF, applies
// control messages from the controller (start/stop sessions, forwarding
// table updates, settings), and implements the τ-delayed shutdown on
// NC_VNF_END.
type Daemon struct {
	vnf   *dataplane.VNF
	clock simclock.Clock

	mu          sync.Mutex
	started     bool
	stopTimer   <-chan time.Time
	stopCancel  chan struct{}
	closed      bool
	applied     int // control messages applied (for tests/metrics)
	tableSwaps  int
	lastApplied Signal

	// Lifecycle state (see lifecycle.go): draining marks an in-progress
	// graceful drain; deployVersion tracks the last versioned deploy file
	// applied by Reload, enforcing reload monotonicity.
	draining      bool
	deployVersion int
}

// NewDaemon builds a daemon managing a VNF on the given conn.
func NewDaemon(conn emunet.PacketConn, clk simclock.Clock, opts ...dataplane.VNFOption) *Daemon {
	if clk == nil {
		clk = simclock.Real{}
	}
	return &Daemon{
		vnf:   dataplane.NewVNF(conn, opts...),
		clock: clk,
	}
}

// VNF exposes the managed coding function.
func (d *Daemon) VNF() *dataplane.VNF { return d.vnf }

// Applied returns how many control messages were applied.
func (d *Daemon) Applied() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

// TableSwaps returns how many forwarding-table updates were applied.
func (d *Daemon) TableSwaps() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tableSwaps
}

// LastSignal returns the most recently applied signal.
func (d *Daemon) LastSignal() Signal {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastApplied
}

// Apply executes one control message. Each apply's latency is observed
// into the VNF registry's apply-latency histogram, so a daemon snapshot
// shows how long control pushes take to take effect (Table III's
// table-update cost).
func (d *Daemon) Apply(m *Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("controller: daemon closed")
	}
	if d.draining && (m.Signal == NCSettings || m.Signal == NCStart) {
		// A draining daemon is on its way out: refuse anything that would
		// grow its state or re-open it (the VNF-level admission gate backs
		// this up for NC_SETTINGS).
		return fmt.Errorf("%s refused: %w", m.Signal, ErrAlreadyDraining)
	}
	start := d.clock.Now()
	defer func() {
		d.vnf.Telemetry().Histogram(MetricApplyNs).Observe(d.clock.Now().Sub(start).Nanoseconds())
	}()
	d.applied++
	d.lastApplied = m.Signal
	switch m.Signal {
	case NCSettings:
		if m.Settings == nil {
			return fmt.Errorf("controller: NC_SETTINGS without settings")
		}
		return d.vnf.Configure(*m.Settings)
	case NCStart:
		d.cancelShutdownLocked()
		if !d.started {
			d.vnf.Start()
			d.started = true
		}
		return nil
	case NCForwardTab:
		d.tableSwaps++
		d.vnf.UpdateTable(m.Table)
		return nil
	case NCVNFEnd:
		tau := m.ShutdownAfter
		d.scheduleShutdownLocked(tau)
		return nil
	case NCVNFStart:
		// VM-level launches are handled by the controller's cloud pools;
		// at the daemon this is a no-op acknowledgement.
		return nil
	case NCSessionEnd:
		d.vnf.EndSession(m.Session)
		return nil
	default:
		return fmt.Errorf("controller: unknown signal %d", int(m.Signal))
	}
}

// scheduleShutdownLocked arms the τ shutdown timer. A subsequent NC_START
// within τ cancels it ("VNF reuse helps mitigate the overhead of launching
// new VNFs").
func (d *Daemon) scheduleShutdownLocked(tau time.Duration) {
	d.cancelShutdownLocked()
	cancel := make(chan struct{})
	d.stopCancel = cancel
	timer := d.clock.After(tau)
	go func() {
		select {
		case <-timer:
			d.mu.Lock()
			if d.stopCancel == cancel {
				d.stopCancel = nil
				d.closed = true
				d.mu.Unlock()
				d.vnf.Close()
				return
			}
			d.mu.Unlock()
		case <-cancel:
		}
	}()
}

func (d *Daemon) cancelShutdownLocked() {
	if d.stopCancel != nil {
		close(d.stopCancel)
		d.stopCancel = nil
	}
}

// Closed reports whether the daemon shut its VNF down.
func (d *Daemon) Closed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Close shuts the daemon and its VNF down immediately.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.cancelShutdownLocked()
	d.closed = true
	d.mu.Unlock()
	return d.vnf.Close()
}
