package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/probe"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
	"ncfn/internal/topology"
)

// Supervisor is the controller's resilience loop: it health-probes the
// coding VNFs the control plane deployed and, when one dies, relaunches a
// replacement VM through the cloud API (bounded retries, exponential
// backoff), waits out the ~35 s launch latency, and invokes a redeploy
// callback that reconfigures the new VNF and re-pushes forwarding tables so
// the session heals. Downstream decoders ride out the gap on RLNC
// redundancy and resends; the supervisor's job is to make the gap bounded.
//
// The supervisor is tick-driven: Tick advances every managed VNF's state
// machine exactly once, with all timing read from the configured clock.
// Under a simclock.Virtual this makes fault handling fully deterministic —
// the chaos harness calls Tick at fixed virtual intervals. Run wraps Tick
// in a periodic loop for real deployments.
type Supervisor struct {
	cfg SupervisorConfig
	tel supTelemetry

	mu      sync.Mutex
	managed map[topology.NodeID]*managedVNF
	events  []FailoverEvent
}

// SupervisorConfig configures a Supervisor.
type SupervisorConfig struct {
	// Cloud launches replacement instances.
	Cloud *cloud.Cloud
	// Clock drives detection timestamps, backoff, and readiness polling.
	Clock simclock.Clock
	// Retry bounds relaunch and redeploy attempts (defaults apply).
	Retry RetryPolicy
	// FailThreshold is how many consecutive failed health checks declare a
	// VNF dead (default 2 — one lost probe must not trigger a 35 s
	// relaunch).
	FailThreshold int
	// Telemetry receives the supervisor's counters, failover-duration
	// histogram, and flight-recorder events (retry, failover). Nil gets a
	// private registry, reachable via Supervisor.Telemetry.
	Telemetry *telemetry.Registry
}

// failoverPhase is a managed VNF's position in the recovery state machine.
type failoverPhase int

const (
	phaseHealthy failoverPhase = iota
	phaseRelaunching
	phaseWaitingReady
	phaseFailed
)

// managedVNF is one supervised coding function.
type managedVNF struct {
	node     topology.NodeID
	region   topology.NodeID
	instance string
	check    func(instance string) error
	redeploy func(ctx context.Context, newInstance string) error

	phase         failoverPhase
	consecFails   int
	attempts      int // launch attempts in the current failover
	redeployFails int
	nextAttempt   time.Time
	pending       FailoverEvent // event under construction during a failover
}

// FailoverEvent records one completed (or abandoned) VNF recovery.
type FailoverEvent struct {
	Node                     topology.NodeID
	OldInstance, NewInstance string
	// DetectedAt is when the fail threshold was crossed; LaunchedAt when
	// the replacement VM launch was accepted; ReadyAt when it reached
	// Running; RecoveredAt when redeploy (table re-push) completed.
	DetectedAt, LaunchedAt, ReadyAt, RecoveredAt time.Time
	// LaunchAttempts counts LaunchInstance calls, including failures.
	LaunchAttempts int
	// Err is set when the failover was abandoned (retries exhausted).
	Err error
}

// NewSupervisor builds a Supervisor.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	return &Supervisor{
		cfg:     cfg,
		tel:     newSupTelemetry(cfg.Telemetry),
		managed: make(map[topology.NodeID]*managedVNF),
	}
}

// Telemetry returns the registry holding the supervisor's instruments.
func (s *Supervisor) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Manage registers a VNF for supervision. check is the health probe for the
// current instance (see PingCheck and InstanceCheck); redeploy must bring a
// replacement instance into service — reconfigure the VNF and re-push every
// forwarding table that referenced the old one. region is the cloud region
// replacements launch in (usually the node itself).
func (s *Supervisor) Manage(node, region topology.NodeID, instance string,
	check func(instance string) error,
	redeploy func(ctx context.Context, newInstance string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.managed[node] = &managedVNF{
		node:     node,
		region:   region,
		instance: instance,
		check:    check,
		redeploy: redeploy,
	}
}

// Instance returns the node's currently supervised instance ID.
func (s *Supervisor) Instance(node topology.NodeID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.managed[node]
	if !ok {
		return "", false
	}
	return m.instance, true
}

// Events returns a copy of the failover log.
func (s *Supervisor) Events() []FailoverEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FailoverEvent(nil), s.events...)
}

// Tick advances every managed VNF's recovery state machine once. Nodes are
// visited in sorted order so a tick's side effects are deterministic.
func (s *Supervisor) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := make([]topology.NodeID, 0, len(s.managed))
	for n := range s.managed {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		s.tickOneLocked(s.managed[n])
	}
}

// tickOneLocked advances one VNF. The supervisor mutex is held; check and
// redeploy callbacks must therefore not call back into the supervisor.
func (s *Supervisor) tickOneLocked(m *managedVNF) {
	now := s.cfg.Clock.Now()
	switch m.phase {
	case phaseHealthy:
		if m.check(m.instance) == nil {
			m.consecFails = 0
			return
		}
		m.consecFails++
		if m.consecFails < s.cfg.FailThreshold {
			return
		}
		m.phase = phaseRelaunching
		m.attempts = 0
		m.redeployFails = 0
		m.nextAttempt = now
		m.pending = FailoverEvent{Node: m.node, OldInstance: m.instance, DetectedAt: now}

	case phaseRelaunching:
		if now.Before(m.nextAttempt) {
			return
		}
		m.attempts++
		m.pending.LaunchAttempts = m.attempts
		inst, err := s.cfg.Cloud.LaunchInstance(m.region)
		if err != nil {
			if m.attempts >= s.cfg.Retry.MaxAttempts {
				s.abandonLocked(m, fmt.Errorf("relaunch %s: %w", m.node, err))
				return
			}
			s.tel.retries.Inc(0)
			s.tel.rec.Record(now.UnixNano(), telemetry.EventRetry, string(m.node),
				0, 0, int64(m.attempts))
			m.nextAttempt = now.Add(s.cfg.Retry.Backoff(m.attempts))
			return
		}
		m.pending.NewInstance = inst.ID
		m.pending.LaunchedAt = now
		m.phase = phaseWaitingReady

	case phaseWaitingReady:
		st, err := s.cfg.Cloud.InstanceState(m.pending.NewInstance)
		if err != nil || st != cloud.StateRunning {
			return // still pending; readiness is clock-driven
		}
		if m.pending.ReadyAt.IsZero() {
			m.pending.ReadyAt = now
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Retry.Timeout)
		err = m.redeploy(ctx, m.pending.NewInstance)
		cancel()
		if err != nil {
			m.redeployFails++
			if m.redeployFails >= s.cfg.Retry.MaxAttempts {
				s.abandonLocked(m, fmt.Errorf("redeploy %s: %w", m.node, err))
				return
			}
			s.tel.retries.Inc(0)
			s.tel.rec.Record(now.UnixNano(), telemetry.EventRetry, string(m.node),
				0, 0, int64(m.redeployFails))
			return
		}
		m.pending.RecoveredAt = now
		s.events = append(s.events, m.pending)
		s.tel.done.Inc(0)
		dur := now.Sub(m.pending.DetectedAt).Nanoseconds()
		s.tel.durations.Observe(dur)
		s.tel.rec.Record(now.UnixNano(), telemetry.EventFailover, string(m.node), 0, 0, dur)
		m.instance = m.pending.NewInstance
		m.phase = phaseHealthy
		m.consecFails = 0
		m.pending = FailoverEvent{}

	case phaseFailed:
		// Terminal until a new Manage call replaces the registration.
	}
}

// abandonLocked gives up on the current failover and logs the failure. The
// flight recorder marks it as a failover event with Value -1, keeping
// completed recoveries (non-negative durations) trivially separable.
func (s *Supervisor) abandonLocked(m *managedVNF, err error) {
	m.phase = phaseFailed
	m.pending.Err = fmt.Errorf("%w: %v", ErrRetriesExhausted, err)
	s.events = append(s.events, m.pending)
	s.tel.abandoned.Inc(0)
	s.tel.rec.Record(s.cfg.Clock.Now().UnixNano(), telemetry.EventFailover,
		string(m.node), 0, 0, -1)
}

// Run ticks the supervisor every interval until ctx is cancelled — the
// production loop. Tests drive Tick directly under a virtual clock instead.
func (s *Supervisor) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.cfg.Clock.After(interval):
			s.Tick()
		}
	}
}

// ErrUnhealthy is returned by health checks that got an answer indicating a
// bad state (as opposed to no answer at all).
var ErrUnhealthy = errors.New("controller: vnf unhealthy")

// PingCheck builds a health check that pings the VNF's data-plane address
// through the given prober (package probe's ping, Sec. III-A's per-node
// daemon liveness). A single lost reply within timeout marks the check
// failed; the supervisor's FailThreshold absorbs isolated losses.
func PingCheck(p *probe.Prober, target string, timeout time.Duration) func(string) error {
	return func(string) error {
		res, err := p.Ping(target, 1, 16, timeout)
		if err != nil {
			return fmt.Errorf("%w: ping %s: %v", ErrUnhealthy, target, err)
		}
		if res.Received == 0 {
			return fmt.Errorf("%w: ping %s: no reply", ErrUnhealthy, target)
		}
		return nil
	}
}

// InstanceCheck builds a health check on the cloud API's instance state —
// the controller-side view (EC2 DescribeInstances) that catches VM crashes
// even when the network path to the VNF still looks fine.
func InstanceCheck(cl *cloud.Cloud) func(string) error {
	return func(instance string) error {
		st, err := cl.InstanceState(instance)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnhealthy, err)
		}
		if st != cloud.StateRunning && st != cloud.StatePending {
			return fmt.Errorf("%w: instance %s is %s", ErrUnhealthy, instance, st)
		}
		return nil
	}
}
