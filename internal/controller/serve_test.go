package controller

import (
	"net"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
)

// TestServeControlStream drives a daemon through a full control session
// over an in-memory byte stream: settings, peer registration, forwarding
// table, start, and shutdown — the exact path cmd/ncd serves over TCP.
func TestServeControlStream(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	d := NewDaemon(n.Host("node"), nil)
	defer d.Close()
	registry := emunet.NewRegistry()

	client, server := net.Pipe()
	defer client.Close()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeControlStream(server, d, registry)
		server.Close()
	}()

	sendAndAwait := func(m *Message) {
		t.Helper()
		if err := m.Encode(client); err != nil {
			t.Fatal(err)
		}
		ack := make([]byte, 1)
		if err := client.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Read(ack); err != nil || ack[0] != 0x06 {
			t.Fatalf("ack: %v %v", ack, err)
		}
	}

	sendAndAwait(&Message{
		Signal: NCSettings,
		Peers:  map[string]string{"next-hop": "127.0.0.1:9999"},
		Settings: &dataplane.SessionConfig{
			ID: 5, Params: smallParams(), Role: dataplane.RoleRecoder,
		},
	})
	if _, ok := registry.Lookup("next-hop"); !ok {
		t.Fatal("peer binding not registered")
	}
	sendAndAwait(&Message{
		Signal: NCForwardTab,
		Table:  map[ncproto.SessionID][]dataplane.HopGroup{5: {{Addrs: []string{"next-hop"}}}},
	})
	sendAndAwait(&Message{Signal: NCStart})
	if d.VNF().Table().NextHops(5, 0)[0] != "next-hop" {
		t.Fatal("table not applied through the stream")
	}

	// Closing the client ends the stream cleanly.
	client.Close()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after stream closed")
	}
}

func TestServeControlStreamBadPeer(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	d := NewDaemon(n.Host("node"), nil)
	defer d.Close()
	client, server := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- ServeControlStream(server, d, emunet.NewRegistry()) }()
	msg := &Message{Signal: NCStart, Peers: map[string]string{"x": "not-an-address:xx:yy"}}
	if err := msg.Encode(client); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("bad peer address accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not fail on bad peer")
	}
}

func TestServeControlStreamApplyError(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	d := NewDaemon(n.Host("node"), nil)
	defer d.Close()
	client, server := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- ServeControlStream(server, d, nil) }()
	// NC_SETTINGS without a payload must surface as an error.
	if err := (&Message{Signal: NCSettings}).Encode(client); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("apply error swallowed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not fail on apply error")
	}
}
