package controller

import (
	"encoding/json"
	"fmt"
	"sort"

	"ncfn/internal/dataplane"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

// DeployFile is the deployment JSON schema: sessions, roles, forwarding
// tables, and peer address bindings as one document (see cmd/ncctl for an
// example). ncctl reads it to drive start/stop/reload/rolling-restart, the
// procnet harness writes it for the multi-process tiers, and a daemon's
// admin /reload endpoint diffs one against its live state to hot-apply
// changes without a restart. Version, when nonzero, makes reloads
// monotonic: a daemon refuses a reload whose version is not newer than the
// one it last applied.
type DeployFile struct {
	Version  int             `json:"version,omitempty"`
	Sessions []DeploySession `json:"sessions"`
	// Peers maps logical node names to UDP data-plane addresses.
	Peers map[string]string `json:"peers,omitempty"`
	// Daemons maps node names to TCP control addresses.
	Daemons map[string]string `json:"daemons,omitempty"`
	// Admin maps node names to HTTP admin addresses.
	Admin map[string]string `json:"admin,omitempty"`
}

// DeploySession is one session entry of the deployment document.
type DeploySession struct {
	ID         int `json:"id"`
	Blocks     int `json:"blocks"`
	BlockSize  int `json:"blockSize"`
	Redundancy int `json:"redundancy"`
	// Field selects the coefficient field: 2 for GF(2), 256 or 0 for
	// GF(2^8).
	Field    int                         `json:"field,omitempty"`
	Roles    map[string]string           `json:"roles"`
	InPerGen map[string]int              `json:"inPerGen,omitempty"`
	Tables   map[string][]DeployHopGroup `json:"tables,omitempty"`
}

// DeployHopGroup is one next-hop group of a forwarding-table entry.
type DeployHopGroup struct {
	Addrs  []string `json:"addrs"`
	PerGen int      `json:"perGen,omitempty"`
}

// ParseFieldOrder maps the JSON field order (2, 256, or 0 for the default)
// to the gf.Field enum.
func ParseFieldOrder(order int) (gf.Field, error) {
	switch order {
	case 0, 256:
		return gf.GF256, nil
	case 2:
		return gf.GF2, nil
	default:
		return 0, fmt.Errorf("unknown field order %d (want 2 or 256)", order)
	}
}

// ParseRole maps a deploy-file role string to a dataplane role.
func ParseRole(s string) (dataplane.Role, error) {
	switch s {
	case "recoder":
		return dataplane.RoleRecoder, nil
	case "decoder":
		return dataplane.RoleDecoder, nil
	case "forwarder":
		return dataplane.RoleForwarder, nil
	default:
		return 0, fmt.Errorf("unknown role %q", s)
	}
}

// Params builds the session's coding parameters, applying the defaults for
// omitted blocks/blockSize.
func (s *DeploySession) Params() (rlnc.Params, error) {
	blocks := s.Blocks
	if blocks == 0 {
		blocks = rlnc.DefaultGenerationBlocks
	}
	blockSize := s.BlockSize
	if blockSize == 0 {
		blockSize = rlnc.DefaultBlockSize
	}
	field, err := ParseFieldOrder(s.Field)
	if err != nil {
		return rlnc.Params{}, fmt.Errorf("session %d: %w", s.ID, err)
	}
	p := rlnc.Params{GenerationBlocks: blocks, BlockSize: blockSize, Field: field}
	if err := p.Validate(); err != nil {
		return rlnc.Params{}, fmt.Errorf("session %d: %w", s.ID, err)
	}
	return p, nil
}

// Config builds the session's dataplane configuration for one node, or
// (nil, nil) when the node plays no role in the session.
func (s *DeploySession) Config(node string) (*dataplane.SessionConfig, error) {
	roleName, ok := s.Roles[node]
	if !ok {
		return nil, nil
	}
	role, err := ParseRole(roleName)
	if err != nil {
		return nil, fmt.Errorf("session %d: node %s: %w", s.ID, node, err)
	}
	params, err := s.Params()
	if err != nil {
		return nil, err
	}
	return &dataplane.SessionConfig{
		ID:         ncproto.SessionID(s.ID),
		Params:     params,
		Role:       role,
		Redundancy: s.Redundancy,
		InPerGen:   s.InPerGen[node],
	}, nil
}

// ParseDeployFile unmarshals and validates a deployment document: every
// session's roles and parameters must parse for every node they name.
func ParseDeployFile(raw []byte) (*DeployFile, error) {
	var f DeployFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("controller: parse deploy file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks every session's roles and coding parameters.
func (f *DeployFile) Validate() error {
	seen := make(map[int]bool, len(f.Sessions))
	for i := range f.Sessions {
		s := &f.Sessions[i]
		if seen[s.ID] {
			return fmt.Errorf("controller: deploy file: duplicate session %d", s.ID)
		}
		seen[s.ID] = true
		if _, err := s.Params(); err != nil {
			return fmt.Errorf("controller: deploy file: %w", err)
		}
		for node, roleName := range s.Roles {
			if _, err := ParseRole(roleName); err != nil {
				return fmt.Errorf("controller: deploy file: session %d: node %s: %w", s.ID, node, err)
			}
		}
	}
	return nil
}

// Nodes lists the daemon nodes in deterministic (sorted) order.
func (f *DeployFile) Nodes() []string {
	nodes := make([]string, 0, len(f.Daemons))
	for n := range f.Daemons {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// NodeSessions builds the desired session configurations for one node, in
// deploy-file order.
func (f *DeployFile) NodeSessions(node string) ([]dataplane.SessionConfig, error) {
	var out []dataplane.SessionConfig
	for i := range f.Sessions {
		cfg, err := f.Sessions[i].Config(node)
		if err != nil {
			return nil, err
		}
		if cfg != nil {
			out = append(out, *cfg)
		}
	}
	return out, nil
}

// NodeTable builds the desired forwarding table for one node: one entry per
// session that routes through it.
func (f *DeployFile) NodeTable(node string) map[ncproto.SessionID][]dataplane.HopGroup {
	table := make(map[ncproto.SessionID][]dataplane.HopGroup)
	for i := range f.Sessions {
		s := &f.Sessions[i]
		groups, ok := s.Tables[node]
		if !ok {
			continue
		}
		hops := make([]dataplane.HopGroup, 0, len(groups))
		for _, g := range groups {
			hops = append(hops, dataplane.HopGroup{Addrs: g.Addrs, PerGen: g.PerGen})
		}
		table[ncproto.SessionID(s.ID)] = hops
	}
	return table
}

// NodeMessages builds the cold-start control sequence for one node: one
// NC_SETTINGS per session it plays a role in (carrying the peer bindings),
// one NC_FORWARD_TAB per session with a table entry, then NC_START. A node
// with no role in any session yields nil.
func (f *DeployFile) NodeMessages(node string) ([]*Message, error) {
	var msgs []*Message
	for i := range f.Sessions {
		s := &f.Sessions[i]
		cfg, err := s.Config(node)
		if err != nil {
			return nil, err
		}
		if cfg == nil {
			continue
		}
		msgs = append(msgs, &Message{Signal: NCSettings, Peers: f.Peers, Settings: cfg})
		if groups, ok := s.Tables[node]; ok {
			hops := make([]dataplane.HopGroup, 0, len(groups))
			for _, g := range groups {
				hops = append(hops, dataplane.HopGroup{Addrs: g.Addrs, PerGen: g.PerGen})
			}
			msgs = append(msgs, &Message{
				Signal: NCForwardTab,
				Table:  map[ncproto.SessionID][]dataplane.HopGroup{cfg.ID: hops},
			})
		}
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	return append(msgs, &Message{Signal: NCStart}), nil
}

// ReloadSummary reports what a hot-reload changed.
type ReloadSummary struct {
	Version             int `json:"version"`
	SessionsAdded       int `json:"sessionsAdded"`
	SessionsUpdated     int `json:"sessionsUpdated"`
	SessionsRemoved     int `json:"sessionsRemoved"`
	TableEntriesChanged int `json:"tableEntriesChanged"`
}

// changes is the total number of applied changes.
func (s ReloadSummary) changes() int {
	return s.SessionsAdded + s.SessionsUpdated + s.SessionsRemoved + s.TableEntriesChanged
}

// Reload diffs the deploy file's view of one node against the daemon's live
// VNF state and hot-applies the difference:
//
//   - sessions the file adds (or whose settings changed) get NC_SETTINGS —
//     note a settings change replaces the session's coding state wholesale,
//     so an unchanged session is never touched;
//   - forwarding-table differences are applied as ONE NC_FORWARD_TAB batch,
//     i.e. one RCU snapshot swap, with no pause events;
//   - sessions the file no longer names on this node get NC_SESSION_END.
//
// Peer bindings in the file are NOT registered here (the transport layer
// owns name resolution); the admin endpoint registers them before calling
// Reload. Reload refuses to run on a draining or closed daemon and, for
// versioned files, enforces version monotonicity.
func (d *Daemon) Reload(f *DeployFile, node string) (ReloadSummary, error) {
	if err := f.Validate(); err != nil {
		return ReloadSummary{}, err
	}
	if err := d.checkReloadable(f.Version); err != nil {
		return ReloadSummary{}, err
	}
	sum := ReloadSummary{Version: f.Version}

	desired, err := f.NodeSessions(node)
	if err != nil {
		return sum, err
	}
	desiredByID := make(map[ncproto.SessionID]dataplane.SessionConfig, len(desired))
	for _, cfg := range desired {
		desiredByID[cfg.ID] = cfg
	}

	// Session adds and updates first, so new table entries never point at
	// unconfigured sessions.
	vnf := d.VNF()
	for _, cfg := range desired {
		live, ok := vnf.SessionConfigFor(cfg.ID)
		if ok && live == cfg {
			continue
		}
		if err := d.Apply(&Message{Signal: NCSettings, Settings: &cfg}); err != nil {
			return sum, err
		}
		if ok {
			sum.SessionsUpdated++
		} else {
			sum.SessionsAdded++
		}
	}

	// Forwarding-table diff: every changed entry lands in one ApplyBatch —
	// one snapshot publish, one grace period, zero pauses. Entries whose
	// session survives but loses its table are deleted (nil hops); entries
	// of removed sessions are cleaned up by NC_SESSION_END below.
	desiredTable := f.NodeTable(node)
	liveTable := vnf.Table().Snapshot()
	batch := make(map[ncproto.SessionID][]dataplane.HopGroup)
	for sid, hops := range desiredTable {
		if !equalHopGroups(liveTable[sid], hops) {
			batch[sid] = hops
		}
	}
	for sid := range liveTable {
		if _, keep := desiredTable[sid]; keep {
			continue
		}
		if _, sessionStays := desiredByID[sid]; sessionStays {
			batch[sid] = nil
		}
	}
	if len(batch) > 0 {
		if err := d.Apply(&Message{Signal: NCForwardTab, Table: batch}); err != nil {
			return sum, err
		}
		sum.TableEntriesChanged = len(batch)
	}

	// Retire sessions the file no longer names on this node.
	for _, id := range vnf.SessionIDs() {
		if _, keep := desiredByID[id]; keep {
			continue
		}
		if err := d.Apply(&Message{Signal: NCSessionEnd, Session: id}); err != nil {
			return sum, err
		}
		sum.SessionsRemoved++
	}

	vnf.Telemetry().Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity).
		Record(d.clock.Now().UnixNano(), telemetry.EventReload, node, 0, 0, int64(sum.changes()))
	return sum, nil
}

// equalHopGroups reports whether two hop-group lists are identical.
func equalHopGroups(a, b []dataplane.HopGroup) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].PerGen != b[i].PerGen || len(a[i].Addrs) != len(b[i].Addrs) {
			return false
		}
		for j := range a[i].Addrs {
			if a[i].Addrs[j] != b[i].Addrs[j] {
				return false
			}
		}
	}
	return true
}
