package controller

import (
	"context"
	"net"

	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// Control-plane instrument names. The supervisor and push helpers register
// these in whatever registry the embedding daemon or harness provides, so
// one snapshot covers both planes.
const (
	MetricRetryAttempts      = "controller_retry_attempts"
	MetricFailoversDone      = "controller_failovers_done"
	MetricFailoversAbandoned = "controller_failovers_abandoned"
	MetricFailoverNs         = "controller_failover_duration_ns"
	MetricPushNs             = "controller_push_latency_ns"
	MetricApplyNs            = "controller_apply_latency_ns"
	SupervisorFlightName     = "controller_flight"
)

// supTelemetry is the supervisor's instrument set.
type supTelemetry struct {
	retries   *telemetry.Counter
	done      *telemetry.Counter
	abandoned *telemetry.Counter
	durations *telemetry.Histogram
	rec       *telemetry.Recorder
}

func newSupTelemetry(reg *telemetry.Registry) supTelemetry {
	return supTelemetry{
		retries:   reg.Counter(MetricRetryAttempts, 1),
		done:      reg.Counter(MetricFailoversDone, 1),
		abandoned: reg.Counter(MetricFailoversAbandoned, 1),
		durations: reg.Histogram(MetricFailoverNs),
		rec:       reg.Recorder(SupervisorFlightName, telemetry.DefaultRecorderCapacity),
	}
}

// TimedPush wraps PushMessages with a latency observation: the full
// encode→ack round trip lands in reg's push-latency histogram. clk supplies
// the timestamps (nil uses the real clock) so virtual-clock harnesses stay
// deterministic.
func TimedPush(ctx context.Context, conn net.Conn, reg *telemetry.Registry, clk simclock.Clock, msgs ...*Message) error {
	if reg == nil {
		return PushMessages(ctx, conn, msgs...)
	}
	if clk == nil {
		clk = simclock.Real{}
	}
	start := clk.Now()
	err := PushMessages(ctx, conn, msgs...)
	reg.Histogram(MetricPushNs).Observe(clk.Now().Sub(start).Nanoseconds())
	return err
}
