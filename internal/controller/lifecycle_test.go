package controller

import (
	"errors"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/gf"
	"ncfn/internal/telemetry"
)

// markDraining flips the daemon's drain flag without arming the background
// closer, so drain-refusal paths can be asserted without racing the
// quiescence waiter (an idle VNF quiesces within a poll interval).
func markDraining(d *Daemon) {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
}

// deployV1 is the baseline deployment for the reload tests: two routed
// sessions plus one the next version retires.
func deployV1() *DeployFile {
	return &DeployFile{
		Version: 1,
		Sessions: []DeploySession{
			{
				ID: 1, Blocks: 4, BlockSize: 64,
				Roles:  map[string]string{"node": "recoder"},
				Tables: map[string][]DeployHopGroup{"node": {{Addrs: []string{"a"}}}},
			},
			{
				ID: 2, Blocks: 4, BlockSize: 64,
				Roles:  map[string]string{"node": "forwarder"},
				Tables: map[string][]DeployHopGroup{"node": {{Addrs: []string{"x"}}}},
			},
			{
				ID: 4, Blocks: 4, BlockSize: 64,
				Roles: map[string]string{"node": "forwarder"},
			},
		},
		Daemons: map[string]string{"node": "127.0.0.1:0"},
	}
}

// deployV2 evolves deployV1: session 1 keeps its settings but repoints its
// table, session 2 changes redundancy and loses its table entry, session 3
// appears, session 4 disappears.
func deployV2() *DeployFile {
	return &DeployFile{
		Version: 2,
		Sessions: []DeploySession{
			{
				ID: 1, Blocks: 4, BlockSize: 64,
				Roles:  map[string]string{"node": "recoder"},
				Tables: map[string][]DeployHopGroup{"node": {{Addrs: []string{"b"}, PerGen: 2}}},
			},
			{
				ID: 2, Blocks: 4, BlockSize: 64, Redundancy: 1,
				Roles: map[string]string{"node": "forwarder"},
			},
			{
				ID: 3, Blocks: 4, BlockSize: 64,
				Roles: map[string]string{"node": "decoder"},
			},
		},
		Daemons: map[string]string{"node": "127.0.0.1:0"},
	}
}

// applyDeploy cold-starts a daemon from a deploy file's control sequence.
func applyDeploy(t *testing.T, d *Daemon, f *DeployFile, node string) {
	t.Helper()
	msgs, err := f.NodeMessages(node)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		mustApply(t, d, m)
	}
}

func TestStartDrainClosesWhenQuiesced(t *testing.T) {
	d, _, _ := testDaemon(t)
	mustApply(t, d, &Message{Signal: NCStart})
	if d.Draining() {
		t.Fatal("fresh daemon reports draining")
	}
	if err := d.StartDrain(time.Second); err != nil {
		t.Fatal(err)
	}
	if !d.Draining() || !d.VNF().Draining() {
		t.Fatal("drain did not propagate to daemon and VNF")
	}
	// An idle VNF quiesces immediately; the background waiter then closes
	// the daemon.
	deadline := time.Now().Add(5 * time.Second)
	for !d.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("drained daemon never closed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStartDrainRunsOnClosedHook(t *testing.T) {
	d, _, _ := testDaemon(t)
	mustApply(t, d, &Message{Signal: NCStart})
	done := make(chan struct{})
	if err := d.startDrain(time.Second, func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("onClosed hook never ran")
	}
	if !d.Closed() {
		t.Fatal("hook ran before the daemon closed")
	}
}

func TestStartDrainConflicts(t *testing.T) {
	d, _, _ := testDaemon(t)
	markDraining(d)
	if err := d.StartDrain(time.Second); !errors.Is(err, ErrAlreadyDraining) {
		t.Fatalf("double drain: %v", err)
	}

	closed, _, _ := testDaemon(t)
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closed.StartDrain(time.Second); !errors.Is(err, ErrDaemonClosed) {
		t.Fatalf("drain after close: %v", err)
	}
}

func TestApplyGateWhileDraining(t *testing.T) {
	d, _, _ := testDaemon(t)
	cfg := dataplane.SessionConfig{ID: 1, Params: smallParams(), Role: dataplane.RoleForwarder}
	mustApply(t, d, &Message{Signal: NCSettings, Settings: &cfg})
	mustApply(t, d, &Message{Signal: NCStart})
	markDraining(d)

	if err := d.Apply(&Message{Signal: NCSettings, Settings: &cfg}); !errors.Is(err, ErrAlreadyDraining) {
		t.Fatalf("NC_SETTINGS while draining: %v", err)
	}
	if err := d.Apply(&Message{Signal: NCStart}); !errors.Is(err, ErrAlreadyDraining) {
		t.Fatalf("NC_START while draining: %v", err)
	}
	// Table updates and session teardown stay allowed: upstreams repoint
	// traffic away from a draining node, and the controller may still
	// retire sessions on it.
	mustApply(t, d, &Message{Signal: NCForwardTab, Table: nil})
	mustApply(t, d, &Message{Signal: NCSessionEnd, Session: 1})
	if ids := d.VNF().SessionIDs(); len(ids) != 0 {
		t.Fatalf("session survived NC_SESSION_END: %v", ids)
	}
}

func TestReloadDiff(t *testing.T) {
	d, _, _ := testDaemon(t)
	applyDeploy(t, d, deployV1(), "node")
	swapsBefore := d.TableSwaps()

	sum, err := d.Reload(deployV2(), "node")
	if err != nil {
		t.Fatal(err)
	}
	if sum.SessionsAdded != 1 || sum.SessionsUpdated != 1 || sum.SessionsRemoved != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	// Two table entries changed (session 1 repointed, session 2's entry
	// dropped) in ONE forwarding-table batch: one RCU swap.
	if sum.TableEntriesChanged != 2 {
		t.Fatalf("TableEntriesChanged = %d, want 2", sum.TableEntriesChanged)
	}
	if got := d.TableSwaps() - swapsBefore; got != 1 {
		t.Fatalf("reload used %d table swaps, want 1", got)
	}
	if d.DeployVersion() != 2 {
		t.Fatalf("DeployVersion = %d", d.DeployVersion())
	}

	vnf := d.VNF()
	ids := vnf.SessionIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("sessions after reload = %v", ids)
	}
	if hops := vnf.Table().NextHops(1, 0); len(hops) != 1 || hops[0] != "b" {
		t.Fatalf("session 1 next hops = %v", hops)
	}
	if hops := vnf.Table().NextHops(2, 0); hops != nil {
		t.Fatalf("session 2 kept a table entry: %v", hops)
	}
	if cfg, ok := vnf.SessionConfigFor(2); !ok || cfg.Redundancy != 1 {
		t.Fatalf("session 2 config = %+v ok=%v", cfg, ok)
	}

	rec := vnf.Telemetry().Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventReload)
	if len(evs) != 1 {
		t.Fatalf("EventReload count = %d", len(evs))
	}
	if evs[0].Value != int64(sum.changes()) || evs[0].Value != 5 {
		t.Fatalf("EventReload value = %d, want 5", evs[0].Value)
	}
}

func TestReloadUnchangedIsNoop(t *testing.T) {
	d, _, _ := testDaemon(t)
	f := deployV1()
	f.Version = 0 // unversioned files reload freely
	applyDeploy(t, d, f, "node")
	appliedBefore := d.Applied()
	swapsBefore := d.TableSwaps()

	sum, err := d.Reload(f, "node")
	if err != nil {
		t.Fatal(err)
	}
	if sum.changes() != 0 {
		t.Fatalf("no-op reload reported changes: %+v", sum)
	}
	if d.Applied() != appliedBefore || d.TableSwaps() != swapsBefore {
		t.Fatal("no-op reload pushed control messages")
	}
}

func TestReloadRefusals(t *testing.T) {
	d, _, _ := testDaemon(t)
	if _, err := d.Reload(deployV2(), "node"); err != nil {
		t.Fatal(err)
	}
	// Same version again, then an older one: both stale.
	if _, err := d.Reload(deployV2(), "node"); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("same-version reload: %v", err)
	}
	if _, err := d.Reload(deployV1(), "node"); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("older-version reload: %v", err)
	}
	// Unversioned files bypass the monotonicity check.
	f := deployV1()
	f.Version = 0
	if _, err := d.Reload(f, "node"); err != nil {
		t.Fatalf("unversioned reload: %v", err)
	}

	markDraining(d)
	if _, err := d.Reload(&DeployFile{Version: 9}, "node"); !errors.Is(err, ErrAlreadyDraining) {
		t.Fatalf("reload while draining: %v", err)
	}
	if d.DeployVersion() != 2 {
		t.Fatalf("refused reloads moved the version: %d", d.DeployVersion())
	}

	closed, _, _ := testDaemon(t)
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := closed.Reload(&DeployFile{}, "node"); !errors.Is(err, ErrDaemonClosed) {
		t.Fatalf("reload after close: %v", err)
	}

	// Invalid files are rejected before any lifecycle bookkeeping.
	bad := &DeployFile{Version: 9, Sessions: []DeploySession{{ID: 1}, {ID: 1}}}
	fresh, _, _ := testDaemon(t)
	if _, err := fresh.Reload(bad, "node"); err == nil {
		t.Fatal("duplicate-session file accepted")
	}
	if fresh.DeployVersion() != 0 {
		t.Fatal("invalid reload claimed a version")
	}
}

func TestParseDeployFile(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		ok   bool
	}{
		{"malformed", `{`, false},
		{"duplicate session", `{"sessions":[{"id":1},{"id":1}]}`, false},
		{"bad role", `{"sessions":[{"id":1,"roles":{"n":"oracle"}}]}`, false},
		{"bad field", `{"sessions":[{"id":1,"field":17}]}`, false},
		{"bad params", `{"sessions":[{"id":1,"blocks":-3}]}`, false},
		{"minimal", `{"sessions":[{"id":1,"roles":{"n":"decoder"}}]}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDeployFile([]byte(tc.raw))
			if (err == nil) != tc.ok {
				t.Fatalf("ParseDeployFile(%s): err=%v want ok=%v", tc.raw, err, tc.ok)
			}
		})
	}
}

func TestDeployFileNodeMessages(t *testing.T) {
	f := deployV1()
	msgs, err := f.NodeMessages("node")
	if err != nil {
		t.Fatal(err)
	}
	// Three NC_SETTINGS (interleaved with each session's table push) and a
	// trailing NC_START.
	var wantOrder = []Signal{NCSettings, NCForwardTab, NCSettings, NCForwardTab, NCSettings, NCStart}
	if len(msgs) != len(wantOrder) {
		t.Fatalf("message count = %d, want %d", len(msgs), len(wantOrder))
	}
	for i, m := range msgs {
		if m.Signal != wantOrder[i] {
			t.Fatalf("msgs[%d] = %v, want %v", i, m.Signal, wantOrder[i])
		}
	}
	if msgs[len(msgs)-1].Signal != NCStart {
		t.Fatal("NC_START not last")
	}

	// A node with no role gets no control sequence.
	none, err := f.NodeMessages("stranger")
	if err != nil || none != nil {
		t.Fatalf("stranger messages = %v, %v", none, err)
	}

	if nodes := f.Nodes(); len(nodes) != 1 || nodes[0] != "node" {
		t.Fatalf("Nodes = %v", nodes)
	}
	tbl := f.NodeTable("node")
	if len(tbl) != 2 || tbl[1][0].Addrs[0] != "a" {
		t.Fatalf("NodeTable = %v", tbl)
	}
}

func TestParseRoleAndField(t *testing.T) {
	if r, err := ParseRole("recoder"); err != nil || r != dataplane.RoleRecoder {
		t.Fatalf("recoder: %v %v", r, err)
	}
	if _, err := ParseRole("custom"); err == nil {
		t.Fatal("unknown role accepted")
	}
	if fld, err := ParseFieldOrder(0); err != nil || fld != gf.GF256 {
		t.Fatalf("default field: %v %v", fld, err)
	}
	if fld, err := ParseFieldOrder(2); err != nil || fld != gf.GF2 {
		t.Fatalf("GF(2): %v %v", fld, err)
	}
	if _, err := ParseFieldOrder(64); err == nil {
		t.Fatal("field order 64 accepted")
	}
}
