package controller

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ncfn/internal/leakcheck"
	"ncfn/internal/cloud"
	"ncfn/internal/emunet"
	"ncfn/internal/probe"
	"ncfn/internal/simclock"
)

func TestBackoffSchedule(t *testing.T) {
	p := DefaultRetryPolicy()
	want := []time.Duration{
		500 * time.Millisecond, // attempt 1
		time.Second,
		2 * time.Second,
		4 * time.Second,
		8 * time.Second, // hits the cap
		8 * time.Second, // stays capped
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0); got != 500*time.Millisecond {
		t.Errorf("Backoff(0) = %v, want clamped to first retry", got)
	}
	// Determinism: no jitter, same inputs, same outputs.
	if p.Backoff(3) != p.Backoff(3) {
		t.Error("Backoff is not deterministic")
	}
}

func TestRetryDoSucceedsAfterTransientFailures(t *testing.T) {
	leakcheck.Check(t)
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Timeout: time.Second}
	var calls int
	err := p.Do(context.Background(), simclock.Real{}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
}

func TestRetryDoExhausts(t *testing.T) {
	leakcheck.Check(t)
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Timeout: time.Second}
	var calls int
	err := p.Do(context.Background(), simclock.Real{}, func(context.Context) error {
		calls++
		return errors.New("down")
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Do = %v, want ErrRetriesExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
}

func TestRetryDoHonorsParentCancel(t *testing.T) {
	leakcheck.Check(t)
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour, Timeout: time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, simclock.Real{}, func(context.Context) error {
			return errors.New("fail")
		})
	}()
	cancel() // aborts the hour-long backoff
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
}

func TestRetryDoAttemptDeadline(t *testing.T) {
	leakcheck.Check(t)
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Timeout: 20 * time.Millisecond}
	var sawDeadline atomic.Bool
	err := p.Do(context.Background(), simclock.Real{}, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline.Store(true)
		}
		<-ctx.Done() // simulate an RPC blocked until the per-attempt timeout
		return ctx.Err()
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Do = %v, want ErrRetriesExhausted", err)
	}
	if !sawDeadline.Load() {
		t.Fatal("attempt context carried no deadline")
	}
}

func TestPushMessagesRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			if _, err := DecodeMessage(server); err != nil {
				return
			}
			if _, err := server.Write([]byte{0x06}); err != nil {
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	msgs := []*Message{
		{Signal: NCStart},
		{Signal: NCVNFEnd, ShutdownAfter: time.Minute},
	}
	if err := PushMessages(ctx, client, msgs...); err != nil {
		t.Fatalf("PushMessages = %v", err)
	}
}

func TestPushMessagesTimesOutOnDeadDaemon(t *testing.T) {
	leakcheck.Check(t)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// The "daemon" reads the message but never acks — a wedged peer.
	go func() { _, _ = DecodeMessage(server) }()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := PushMessages(ctx, client, &Message{Signal: NCStart})
	if err == nil {
		t.Fatal("PushMessages succeeded against a daemon that never acks")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("push took %v, deadline did not bound it", elapsed)
	}
}

func TestPushMessagesCancelAborts(t *testing.T) {
	leakcheck.Check(t)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() { _, _ = DecodeMessage(server) }() // wedged peer again
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- PushMessages(ctx, client, &Message{Signal: NCStart}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled push reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not abort the push")
	}
}

func TestPoolLaunchRetriesTransientFailures(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	pool := newVNFPool("oregon", cl, clk, time.Minute, RetryPolicy{MaxAttempts: 4})
	cl.FailLaunches("oregon", 2)
	launched, err := pool.ensure(1)
	if err != nil {
		t.Fatalf("ensure = %v", err)
	}
	if launched != 1 {
		t.Fatalf("launched = %d, want 1", launched)
	}
	if pool.launchRetries != 2 {
		t.Fatalf("launchRetries = %d, want 2", pool.launchRetries)
	}
}

func TestPoolLaunchExhaustsRetries(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	pool := newVNFPool("oregon", cl, clk, time.Minute, RetryPolicy{MaxAttempts: 3})
	cl.FailLaunches("oregon", 10)
	if _, err := pool.ensure(1); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("ensure = %v, want ErrRetriesExhausted", err)
	}
}

// supervisedCloud builds a virtual-clock cloud with one running instance in
// "oregon" and a supervisor managing it via InstanceCheck.
func supervisedCloud(t *testing.T, retry RetryPolicy) (*cloud.Cloud, *simclock.Virtual, *Supervisor, *cloud.Instance, *atomic.Int32) {
	t.Helper()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	inst, err := cl.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(cloud.DefaultLaunchDelay)
	sup := NewSupervisor(SupervisorConfig{Cloud: cl, Clock: clk, Retry: retry, FailThreshold: 2})
	var redeploys atomic.Int32
	sup.Manage("T", "oregon", inst.ID, InstanceCheck(cl), func(ctx context.Context, newInstance string) error {
		redeploys.Add(1)
		return nil
	})
	return cl, clk, sup, inst, &redeploys
}

func TestSupervisorRecoversCrashedVNF(t *testing.T) {
	leakcheck.Check(t)
	cl, clk, sup, inst, redeploys := supervisedCloud(t, RetryPolicy{})

	// Healthy ticks do nothing.
	sup.Tick()
	sup.Tick()
	if len(sup.Events()) != 0 {
		t.Fatal("healthy VNF produced failover events")
	}

	if err := cl.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	crashAt := clk.Now()
	tick := time.Second
	// Two failed checks cross the threshold; next tick launches.
	sup.Tick()
	clk.Advance(tick)
	sup.Tick() // detection
	clk.Advance(tick)
	sup.Tick() // relaunch accepted
	// Walk virtual time through the 35 s launch latency, ticking as a
	// production supervisor would.
	for i := 0; i < 40; i++ {
		clk.Advance(tick)
		sup.Tick()
	}
	events := sup.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Err != nil {
		t.Fatalf("failover error: %v", ev.Err)
	}
	if ev.OldInstance != inst.ID || ev.NewInstance == inst.ID || ev.NewInstance == "" {
		t.Fatalf("bad instance swap: old=%s new=%s", ev.OldInstance, ev.NewInstance)
	}
	if got, _ := sup.Instance("T"); got != ev.NewInstance {
		t.Fatalf("Instance = %s, want %s", got, ev.NewInstance)
	}
	if redeploys.Load() != 1 {
		t.Fatalf("redeploy called %d times, want 1", redeploys.Load())
	}
	// Recovery latency: detection + relaunch + 35 s readiness, all in
	// virtual time. The bound is launch delay plus a few 1 s ticks of
	// detection/polling slack.
	rec := ev.RecoveredAt.Sub(ev.DetectedAt)
	if rec < cloud.DefaultLaunchDelay {
		t.Fatalf("recovered in %v, faster than the launch latency — bogus", rec)
	}
	if max := cloud.DefaultLaunchDelay + 5*tick; rec > max {
		t.Fatalf("recovered in %v, want ≤ %v", rec, max)
	}
	if ev.DetectedAt.Sub(crashAt) > 2*tick {
		t.Fatalf("detection took %v, want ≤ 2 ticks", ev.DetectedAt.Sub(crashAt))
	}

	// The replacement is healthy: further ticks stay quiet.
	sup.Tick()
	if len(sup.Events()) != 1 {
		t.Fatal("recovered VNF produced extra events")
	}
}

func TestSupervisorBacksOffAndAbandons(t *testing.T) {
	leakcheck.Check(t)
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Second, MaxDelay: 8 * time.Second}
	cl, clk, sup, inst, redeploys := supervisedCloud(t, retry)
	cl.FailLaunches("oregon", 100) // region out of capacity for good

	if err := cl.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	clk.Advance(time.Second)
	sup.Tick() // detected
	// Attempt 1 immediately, then backoff 2s, attempt 2, backoff 4s,
	// attempt 3, abandon.
	for i := 0; i < 30; i++ {
		clk.Advance(time.Second)
		sup.Tick()
		if len(sup.Events()) > 0 {
			break
		}
	}
	events := sup.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1 abandoned failover", len(events))
	}
	ev := events[0]
	if !errors.Is(ev.Err, ErrRetriesExhausted) {
		t.Fatalf("event error = %v, want ErrRetriesExhausted", ev.Err)
	}
	if ev.LaunchAttempts != 3 {
		t.Fatalf("LaunchAttempts = %d, want 3", ev.LaunchAttempts)
	}
	if got := cl.LaunchFailures("oregon"); got != 3 {
		t.Fatalf("cloud saw %d launch attempts, want 3 (backoff must pace them)", got)
	}
	if redeploys.Load() != 0 {
		t.Fatal("redeploy ran despite abandoned launch")
	}
	// Failed is terminal: more ticks change nothing.
	clk.Advance(time.Minute)
	sup.Tick()
	if len(sup.Events()) != 1 {
		t.Fatal("terminal VNF produced more events")
	}
}

func TestSupervisorFailThresholdAbsorbsOneLostProbe(t *testing.T) {
	_, clk, sup, _, _ := supervisedCloud(t, RetryPolicy{})
	flaky := true
	var calls int
	sup.Manage("T", "oregon", "i-x", func(string) error {
		calls++
		if flaky {
			flaky = false
			return ErrUnhealthy // one isolated failure
		}
		return nil
	}, func(context.Context, string) error { return nil })
	sup.Tick() // fail 1 of threshold 2
	clk.Advance(time.Second)
	sup.Tick() // healthy again: counter resets
	clk.Advance(time.Second)
	sup.Tick()
	if len(sup.Events()) != 0 {
		t.Fatal("single lost probe triggered a failover")
	}
	if calls != 3 {
		t.Fatalf("check called %d times, want 3", calls)
	}
}

func TestPingCheckAgainstResponder(t *testing.T) {
	leakcheck.Check(t)
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	vnf := n.Host("vnf")
	resp := probe.NewResponder(vnf)
	pr := probe.NewProber(n.Host("ctl"), simclock.Real{})
	defer pr.Close()

	check := PingCheck(pr, "vnf", 100*time.Millisecond)
	if err := check("i-whatever"); err != nil {
		t.Fatalf("check against live responder = %v", err)
	}

	// Dead VNF: partition it and the check must fail within the timeout.
	n.PartitionHost("vnf")
	if err := check("i-whatever"); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("check against partitioned responder = %v, want ErrUnhealthy", err)
	}
	resp.Close()
}

func TestInstanceCheckStates(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	cl := cloud.New(clk, 1, cloud.Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	inst, _ := cl.LaunchInstance("oregon")
	check := InstanceCheck(cl)
	if err := check(inst.ID); err != nil {
		t.Fatalf("pending instance = %v, want healthy (still booting)", err)
	}
	clk.Advance(cloud.DefaultLaunchDelay)
	if err := check(inst.ID); err != nil {
		t.Fatalf("running instance = %v", err)
	}
	if err := cl.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	if err := check(inst.ID); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("crashed instance = %v, want ErrUnhealthy", err)
	}
	if err := check("i-unknown"); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("unknown instance = %v, want ErrUnhealthy", err)
	}
}
