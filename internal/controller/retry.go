package controller

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ncfn/internal/simclock"
)

// RetryPolicy bounds a control-plane RPC: per-attempt timeouts, a capped
// exponential backoff between attempts, and a total attempt budget. The
// paper's controller drives real cloud APIs (EC2 CLI, Linode API) whose
// launch and configuration calls fail transiently; the policy converts
// those into bounded, predictable retry behavior instead of indefinite
// blocking or immediate session failure.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 500 ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 8 s).
	MaxDelay time.Duration
	// Timeout bounds each individual attempt (default 10 s).
	Timeout time.Duration
}

// DefaultRetryPolicy matches the constants documented in DESIGN.md: four
// attempts, 500 ms base doubling to an 8 s cap, 10 s per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   500 * time.Millisecond,
		MaxDelay:    8 * time.Second,
		Timeout:     10 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	return p
}

// Backoff returns the delay before attempt n (n = 1 is the first retry):
// BaseDelay · 2^(n−1), capped at MaxDelay. Deterministic — no jitter — so
// chaos schedules replay identically under a fixed seed.
func (p RetryPolicy) Backoff(n int) time.Duration {
	p = p.withDefaults()
	if n < 1 {
		n = 1
	}
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// ErrRetriesExhausted wraps the last error after MaxAttempts failures.
var ErrRetriesExhausted = errors.New("controller: retries exhausted")

// Do runs op under the policy: each attempt gets a context with a Timeout
// deadline, failures back off exponentially on clk, and the parent context
// cancels the whole loop. Backoff waits use clk so virtual-clock tests can
// drive them deterministically; attempt deadlines use the real clock (they
// bound I/O, not simulation time).
func (p RetryPolicy) Do(ctx context.Context, clk simclock.Clock, op func(context.Context) error) error {
	p = p.withDefaults()
	if clk == nil {
		clk = simclock.Real{}
	}
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		actx, cancel := context.WithTimeout(ctx, p.Timeout)
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if attempt == p.MaxAttempts {
			break
		}
		select {
		case <-clk.After(p.Backoff(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, p.MaxAttempts, last)
}
