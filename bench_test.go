// Package ncfn's root benchmarks regenerate every table and figure of the
// paper's evaluation in reduced (quick) form — one testing.B benchmark per
// experiment, each printing the series it measured. The full-resolution
// sweeps run via cmd/ncbench.
//
//	go test -bench=. -benchmem
package ncfn_test

import (
	"io"
	"os"
	"testing"

	"ncfn/internal/bench"
)

// runExperiment executes one harness entry exactly once per benchmark
// invocation (the experiments are seconds-long macro-benchmarks; b.N loops
// would multiply minutes, so each iteration re-runs the same experiment).
func runExperiment(b *testing.B, name string, out *onceWriter) {
	b.Helper()
	e, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	opts := bench.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(out, opts); err != nil {
			b.Fatal(err)
		}
		out.printed = true
	}
}

// quiet discards experiment output after the first iteration prints it.
type onceWriter struct {
	printed bool
	w       io.Writer
}

func (o *onceWriter) Write(p []byte) (int, error) {
	if o.printed {
		return len(p), nil
	}
	return o.w.Write(p)
}

func newOut() *onceWriter { return &onceWriter{w: os.Stdout} }

func BenchmarkTable1BandwidthProbe(b *testing.B) { runExperiment(b, "table1", newOut()) }

func BenchmarkFig4GenerationSize(b *testing.B) { runExperiment(b, "fig4", newOut()) }

func BenchmarkFig5BufferSize(b *testing.B) { runExperiment(b, "fig5", newOut()) }

func BenchmarkFig7Throughput(b *testing.B) { runExperiment(b, "fig7", newOut()) }

func BenchmarkTable2Delay(b *testing.B) { runExperiment(b, "table2", newOut()) }

func BenchmarkFig8UniformLoss(b *testing.B) { runExperiment(b, "fig8", newOut()) }

func BenchmarkFig9BurstLoss(b *testing.B) { runExperiment(b, "fig9", newOut()) }

func BenchmarkFig10Dynamics(b *testing.B) { runExperiment(b, "fig10", newOut()) }

func BenchmarkFig11BandwidthVariation(b *testing.B) { runExperiment(b, "fig11", newOut()) }

func BenchmarkFig12MaxDelay(b *testing.B) { runExperiment(b, "fig12", newOut()) }

func BenchmarkFig13Alpha(b *testing.B) { runExperiment(b, "fig13", newOut()) }

func BenchmarkTable3ForwardingUpdate(b *testing.B) { runExperiment(b, "table3", newOut()) }

func BenchmarkLaunchOverhead(b *testing.B) { runExperiment(b, "launch", newOut()) }

func BenchmarkAblationFieldSize(b *testing.B) { runExperiment(b, "ablation-field", newOut()) }

func BenchmarkFieldsweep(b *testing.B) { runExperiment(b, "fieldsweep", newOut()) }

func BenchmarkAblationTauReuse(b *testing.B) { runExperiment(b, "ablation-tau", newOut()) }

func BenchmarkAblationPipelined(b *testing.B) { runExperiment(b, "ablation-pipeline", newOut()) }

func BenchmarkSoakPoissonChurn(b *testing.B) { runExperiment(b, "soak", newOut()) }
