// Command benchguard fails CI when a benchmark regresses against the
// baseline recorded in bench_results.txt. It reads `go test -bench` output
// on stdin, keeps the best (minimum) ns/op per benchmark across -count
// repetitions, and compares each against machine-readable baseline lines:
//
//	benchguard-baseline: BenchmarkVNFPipeline/serial 6511 ns/op
//
// A benchmark regresses when best > baseline * (1 + tolerance). Benchmarks
// without a baseline line are reported but never fail; baselines whose
// benchmark did not run are an error (the guard would otherwise rot
// silently when a benchmark is renamed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const baselinePrefix = "benchguard-baseline:"

// benchLine matches standard testing package benchmark output, e.g.
//
//	BenchmarkVNFPipeline/workers=4-8   300000   3728 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "bench_results.txt", "file holding benchguard-baseline lines")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional slowdown over baseline")
	only := fs.String("only", "", "regexp restricting which baselines this invocation enforces "+
		"(lets one baseline file serve several guard runs with different tolerances)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			return fmt.Errorf("bad -only pattern: %w", err)
		}
		for name := range baseline {
			if !re.MatchString(name) {
				delete(baseline, name)
			}
		}
	}
	best, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(best) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	sort.Strings(names)

	var violations []string
	for _, name := range names {
		got := best[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "%-48s %10.0f ns/op  (no baseline)\n", name, got)
			continue
		}
		limit := base * (1 + *tolerance)
		status := "ok"
		if got > limit {
			status = "REGRESSED"
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
					name, got, base, *tolerance*100))
		}
		fmt.Fprintf(w, "%-48s %10.0f ns/op  baseline %.0f  limit %.0f  %s\n",
			name, got, base, limit, status)
	}
	for name := range baseline {
		if _, ok := best[name]; !ok {
			violations = append(violations, fmt.Sprintf("baseline %s never ran (renamed or skipped?)", name))
		}
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("%s", strings.Join(violations, "\n"))
	}
	return nil
}

// loadBaseline extracts benchguard-baseline lines from the results file.
func loadBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, baselinePrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, baselinePrefix))
		if len(fields) < 2 {
			return nil, fmt.Errorf("malformed baseline line %q", line)
		}
		ns, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("malformed baseline ns/op in %q", line)
		}
		out[fields[0]] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s holds no %s lines", path, baselinePrefix)
	}
	return out, nil
}

// parseBench keeps the fastest run per benchmark name, with the GOMAXPROCS
// suffix stripped so baselines survive core-count changes.
func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed ns/op in %q", sc.Text())
		}
		if cur, ok := best[m[1]]; !ok || ns < cur {
			best[m[1]] = ns
		}
	}
	return best, sc.Err()
}
