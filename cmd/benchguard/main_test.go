package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ncfn/internal/dataplane
BenchmarkVNFPipeline/serial-8             300000       4100 ns/op        0 B/op    0 allocs/op
BenchmarkVNFPipeline/serial-8             310000       3900 ns/op        0 B/op    0 allocs/op
BenchmarkVNFPipeline/workers=4-8          400000       3700 ns/op        0 B/op    0 allocs/op
PASS
`

func writeBaseline(t *testing.T, lines ...string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench_results.txt")
	body := "===== pipeline — some prose =====\nprose that is not machine readable\n" +
		strings.Join(lines, "\n") + "\n"
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchKeepsBestAndStripsProcs(t *testing.T) {
	best, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := best["BenchmarkVNFPipeline/serial"]; got != 3900 {
		t.Fatalf("serial best = %v, want 3900 (min of the two runs)", got)
	}
	if got := best["BenchmarkVNFPipeline/workers=4"]; got != 3700 {
		t.Fatalf("workers=4 best = %v", got)
	}
}

func TestRunPassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t,
		"benchguard-baseline: BenchmarkVNFPipeline/serial 4000 ns/op",
		"benchguard-baseline: BenchmarkVNFPipeline/workers=4 3600 ns/op",
	)
	var sb strings.Builder
	// serial 3900 < 4000*1.1; workers 3700 < 3600*1.1.
	if err := run([]string{"-baseline", base}, strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatalf("within tolerance but failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "ok") {
		t.Fatalf("report missing ok status:\n%s", sb.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, "benchguard-baseline: BenchmarkVNFPipeline/serial 3000 ns/op")
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sampleBench), &sb)
	if err == nil || !strings.Contains(err.Error(), "exceeds baseline") {
		t.Fatalf("want regression failure, got %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("report missing REGRESSED flag:\n%s", sb.String())
	}
}

func TestRunToleranceFlagWidensLimit(t *testing.T) {
	base := writeBaseline(t, "benchguard-baseline: BenchmarkVNFPipeline/serial 3000 ns/op")
	var sb strings.Builder
	// 3900 <= 3000 * 1.5
	if err := run([]string{"-baseline", base, "-tolerance", "0.5"}, strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatalf("wide tolerance still failed: %v", err)
	}
}

func TestRunFailsWhenBaselineNeverRan(t *testing.T) {
	base := writeBaseline(t, "benchguard-baseline: BenchmarkRenamedAway 1000 ns/op")
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sampleBench), &sb)
	if err == nil || !strings.Contains(err.Error(), "never ran") {
		t.Fatalf("want stale-baseline failure, got %v", err)
	}
}

func TestRunOnlyRestrictsEnforcedBaselines(t *testing.T) {
	// The UDP baseline is in the file but outside -only, so neither its
	// absence from this run nor its value may fail the invocation.
	base := writeBaseline(t,
		"benchguard-baseline: BenchmarkVNFPipeline/serial 4000 ns/op",
		"benchguard-baseline: BenchmarkUDPSendBatch/batch16 100 ns/op",
	)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-only", "VNFPipeline"}, strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatalf("-only should have excluded the missing UDP baseline: %v", err)
	}
	var sb2 strings.Builder
	err := run([]string{"-baseline", base, "-only", "UDPSendBatch"}, strings.NewReader(sampleBench), &sb2)
	if err == nil || !strings.Contains(err.Error(), "never ran") {
		t.Fatalf("-only kept the UDP baseline, so its absence must fail: %v", err)
	}
	if err := run([]string{"-baseline", base, "-only", "("}, strings.NewReader(sampleBench), &sb2); err == nil {
		t.Fatal("bad -only pattern must be rejected")
	}
}

func TestRunFailsOnEmptyInput(t *testing.T) {
	base := writeBaseline(t, "benchguard-baseline: BenchmarkVNFPipeline/serial 4000 ns/op")
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader("PASS\n"), &sb)
	if err == nil || !strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("want empty-input failure, got %v", err)
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"benchguard-baseline: OnlyName",
		"benchguard-baseline: Bench abc ns/op",
		"benchguard-baseline: Bench -5 ns/op",
	} {
		if _, err := loadBaseline(writeBaseline(t, line)); err == nil {
			t.Fatalf("baseline %q accepted", line)
		}
	}
	// A file with prose but no baseline lines is also an error.
	if _, err := loadBaseline(writeBaseline(t)); err == nil {
		t.Fatal("baseline-free file accepted")
	}
}
