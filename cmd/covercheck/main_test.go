package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProfile(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleProfile = `mode: set
ncfn/internal/telemetry/counter.go:10.2,12.3 4 1
ncfn/internal/telemetry/counter.go:14.2,16.3 6 1
ncfn/internal/telemetry/hist.go:5.2,7.3 10 0
ncfn/internal/dataplane/vnf.go:20.2,25.3 8 1
ncfn/internal/dataplane/vnf.go:30.2,31.3 2 0
`

// telemetry: 10/20 = 50%, dataplane: 8/10 = 80%, total: 18/30 = 60%.

func TestParseProfileAggregatesByPackage(t *testing.T) {
	perPkg, perFile, err := parseProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	counter := perFile["ncfn/internal/telemetry/counter.go"]
	if counter.total != 10 || counter.covered != 10 {
		t.Fatalf("counter.go = %+v, want 10/10", counter)
	}
	hist := perFile["ncfn/internal/telemetry/hist.go"]
	if hist.total != 10 || hist.covered != 0 {
		t.Fatalf("hist.go = %+v, want 0/10", hist)
	}
	tele := perPkg["ncfn/internal/telemetry"]
	if tele.total != 20 || tele.covered != 10 {
		t.Fatalf("telemetry = %+v, want 10/20", tele)
	}
	dp := perPkg["ncfn/internal/dataplane"]
	if dp.total != 10 || dp.covered != 8 {
		t.Fatalf("dataplane = %+v, want 8/10", dp)
	}
}

func TestRunPassesWhenFloorsHold(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var sb strings.Builder
	err := run([]string{"-profile", p, "-total", "60", "-floor", "ncfn/internal/dataplane=80"}, &sb)
	if err != nil {
		t.Fatalf("floors should hold: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "total") {
		t.Fatalf("report missing total line:\n%s", sb.String())
	}
}

func TestRunFailsBelowPackageFloor(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var sb strings.Builder
	err := run([]string{"-profile", p, "-floor", "ncfn/internal/telemetry=90"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "ncfn/internal/telemetry") {
		t.Fatalf("want telemetry floor violation, got %v", err)
	}
}

func TestRunFailsBelowTotalFloor(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var sb strings.Builder
	err := run([]string{"-profile", p, "-total", "70"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "total coverage") {
		t.Fatalf("want total floor violation, got %v", err)
	}
}

func TestRunEnforcesFileFloors(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var sb strings.Builder
	// counter.go is 100% covered: floor holds.
	if err := run([]string{"-profile", p, "-filefloor", "ncfn/internal/telemetry/counter.go=90"}, &sb); err != nil {
		t.Fatalf("file floor should hold: %v", err)
	}
	// hist.go is 0% covered: floor violated.
	err := run([]string{"-profile", p, "-filefloor", "ncfn/internal/telemetry/hist.go=50"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "hist.go") {
		t.Fatalf("want hist.go file-floor violation, got %v", err)
	}
	// Unknown files are violations, not silent passes.
	err = run([]string{"-profile", p, "-filefloor", "ncfn/internal/telemetry/gone.go=50"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("want missing-file violation, got %v", err)
	}
}

func TestRunFailsOnMissingFlooredPackage(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var sb strings.Builder
	err := run([]string{"-profile", p, "-floor", "ncfn/internal/gone=50"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("want missing-package violation, got %v", err)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, body := range []string{
		"mode: set\n",                // no blocks
		"mode: set\nnot a line\n",    // no colon fields
		"mode: set\nf.go:1.1,2.2 x 1\n", // bad statement count
	} {
		if _, _, err := parseProfile(writeProfile(t, body)); err == nil {
			t.Fatalf("profile %q accepted", body)
		}
	}
}

func TestFloorListFlagParsing(t *testing.T) {
	f := floorList{}
	if err := f.Set("a/b=90"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("nofloor"); err == nil {
		t.Fatal("missing = accepted")
	}
	if err := f.Set("a/b=high"); err == nil {
		t.Fatal("non-numeric floor accepted")
	}
	if f.String() != "a/b=90" {
		t.Fatalf("String() = %q", f.String())
	}
}
