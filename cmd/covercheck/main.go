// Command covercheck enforces coverage floors over a Go cover profile.
// `make cover` runs the full test suite with -coverprofile and then:
//
//	covercheck -profile cover.out -total 70 -floor ncfn/internal/telemetry=90 \
//	    -filefloor ncfn/internal/dataplane/sessionstore.go=80
//
// fails (exit 1) when the repo-wide statement coverage drops below -total,
// any -floor package drops below its floor, or any -filefloor file drops
// below its floor. Floors are statement-weighted, matching `go tool cover
// -func` totals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCov accumulates one package's statement counts.
type pkgCov struct {
	total   int
	covered int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// floorList collects repeated -floor pkg=percent flags.
type floorList map[string]float64

func (f floorList) String() string {
	parts := make([]string, 0, len(f))
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f floorList) Set(s string) error {
	pkg, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("floor %q: want pkg=percent", s)
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("floor %q: %w", s, err)
	}
	f[pkg] = p
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	profile := fs.String("profile", "cover.out", "cover profile written by go test -coverprofile")
	total := fs.Float64("total", 0, "repo-wide statement coverage floor in percent (0 disables)")
	floors := floorList{}
	fs.Var(floors, "floor", "per-package floor as pkg=percent (repeatable)")
	fileFloors := floorList{}
	fs.Var(fileFloors, "filefloor", "per-file floor as path/file.go=percent (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	perPkg, perFile, err := parseProfile(*profile)
	if err != nil {
		return err
	}

	var all pkgCov
	names := make([]string, 0, len(perPkg))
	for name, c := range perPkg {
		names = append(names, name)
		all.total += c.total
		all.covered += c.covered
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %6.1f%%\n", name, perPkg[name].percent())
	}
	fmt.Fprintf(w, "%-40s %6.1f%%\n", "total", all.percent())

	var violations []string
	for pkg, floor := range floors {
		c, ok := perPkg[pkg]
		if !ok {
			violations = append(violations, fmt.Sprintf("package %s not present in profile", pkg))
			continue
		}
		if got := c.percent(); got < floor {
			violations = append(violations, fmt.Sprintf("package %s coverage %.1f%% below floor %.1f%%", pkg, got, floor))
		}
	}
	for file, floor := range fileFloors {
		c, ok := perFile[file]
		if !ok {
			violations = append(violations, fmt.Sprintf("file %s not present in profile", file))
			continue
		}
		if got := c.percent(); got < floor {
			violations = append(violations, fmt.Sprintf("file %s coverage %.1f%% below floor %.1f%%", file, got, floor))
		}
	}
	if *total > 0 && all.percent() < *total {
		violations = append(violations, fmt.Sprintf("total coverage %.1f%% below floor %.1f%%", all.percent(), *total))
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("%s", strings.Join(violations, "\n"))
	}
	return nil
}

// parseProfile aggregates a cover profile's statement counts by package and
// by file. Profile lines look like:
//
//	ncfn/internal/telemetry/counter.go:12.34,14.2 3 1
//
// where the trailing fields are the statement count and the hit count.
func parseProfile(path2 string) (map[string]pkgCov, map[string]pkgCov, error) {
	f, err := os.Open(path2)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	perPkg := make(map[string]pkgCov)
	perFile := make(map[string]pkgCov)
	sc := bufio.NewScanner(f)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "mode:") {
				continue
			}
		}
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, nil, fmt.Errorf("malformed profile line %q", line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed statement count in %q", line)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed hit count in %q", line)
		}
		pkg := path.Dir(file)
		c := perPkg[pkg]
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
		perPkg[pkg] = c
		fc := perFile[file]
		fc.total += stmts
		if hits > 0 {
			fc.covered += stmts
		}
		perFile[file] = fc
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(perPkg) == 0 {
		return nil, nil, fmt.Errorf("profile %s has no coverage blocks", path2)
	}
	return perPkg, perFile, nil
}
