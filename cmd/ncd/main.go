// Command ncd is the network coding daemon: it runs one coding VNF over a
// real UDP socket and accepts control messages (NC_SETTINGS, NC_START,
// NC_FORWARD_TAB, NC_VNF_END) on a TCP control port, mirroring the
// per-node daemon of Sec. III-A.
//
//	ncd -name relay1 -data 127.0.0.1:7001 -control 127.0.0.1:8001
//
// The controller (cmd/ncctl) connects to the control port and streams
// length-prefixed JSON messages. Peer name→address bindings arrive in the
// same stream (the "peers" map), so forwarding tables can reference nodes
// by name.
//
// Lifecycle: SIGTERM/SIGINT starts a graceful drain (stop admitting new
// sessions and generations, flush in-flight ones, then close) bounded by
// -drain-deadline; a second signal exits immediately. The admin endpoint
// adds POST /drain, /reload (hot-apply a deploy-file diff) and /restart
// (drain, then exec a fresh ncd on the same bound addresses).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncd", flag.ContinueOnError)
	name := fs.String("name", "", "this node's logical name (required)")
	dataAddr := fs.String("data", "127.0.0.1:0", "UDP address for coded traffic")
	controlAddr := fs.String("control", "127.0.0.1:0", "TCP address for control messages")
	adminAddr := fs.String("admin", "", "HTTP address for the admin endpoint (/stats, /drain, /reload, /restart, /debug/pprof); empty disables it")
	batch := fs.Int("batch", emunet.DefaultRxBatch,
		"datagram I/O batch depth: recvmmsg ring size and per-destination tx coalescing depth (1 = one syscall per packet)")
	drainDeadline := fs.Duration("drain-deadline", controller.DefaultDrainDeadline,
		"how long a graceful drain (SIGTERM, /drain, /restart) waits for in-flight generations before closing anyway")
	readyFile := fs.String("readyfile", "",
		"write a JSON {\"data\",\"control\",\"admin\"} address file once all listeners are up (for process harnesses); empty disables it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return errors.New("-name is required")
	}

	// Register for shutdown signals before any listener opens, so a SIGTERM
	// arriving during startup is queued rather than killing the process
	// mid-bind; the handler goroutine starts once the daemon exists.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	reg := telemetry.NewRegistry()
	registry := emunet.NewRegistry()
	udpOpts := []emunet.UDPOption{emunet.WithUDPTelemetry(reg), emunet.WithRxBatch(*batch)}
	if *batch <= 1 {
		udpOpts = append(udpOpts, emunet.WithPortableIO())
	}
	conn, err := emunet.ListenUDP(*name, *dataAddr, registry, udpOpts...)
	if err != nil {
		return err
	}
	daemon := controller.NewDaemon(conn, nil,
		dataplane.WithTelemetry(reg), dataplane.WithTxCoalesce(*batch))
	defer daemon.Close()

	ln, err := net.Listen("tcp", *controlAddr)
	if err != nil {
		return fmt.Errorf("control listen: %w", err)
	}
	defer ln.Close()
	log.Printf("ncd %s: data %s control %s", *name, conn.UDPAddr(), ln.Addr())

	adminBound := ""
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		defer adminLn.Close()
		reg.PublishExpvar("ncd_" + *name)
		adminBound = adminLn.Addr().String()
		go controller.ServeAdmin(adminLn, controller.AdminConfig{
			Daemon:        daemon,
			Registry:      reg,
			Node:          *name,
			Peers:         registry,
			DrainDeadline: *drainDeadline,
			Restart: execHandoff(*name, conn.UDPAddr().String(), ln.Addr().String(),
				adminBound, *batch, *drainDeadline, *readyFile),
		})
		log.Printf("ncd %s: admin http://%s/stats", *name, adminBound)
	}

	if *readyFile != "" {
		// Every listener is up: publish the bound addresses so a launching
		// harness can stop guessing ports. Write-then-rename keeps readers
		// from seeing a partial file.
		if err := writeReadyFile(*readyFile, readyInfo{
			Data:    conn.UDPAddr().String(),
			Control: ln.Addr().String(),
			Admin:   adminBound,
		}); err != nil {
			return fmt.Errorf("readyfile: %w", err)
		}
	}

	// stopWatch ends the helper goroutines when run returns (tests run
	// several daemons in one process).
	stopWatch := make(chan struct{})
	defer close(stopWatch)

	// SIGTERM/SIGINT start a graceful drain: the VNF refuses new sessions
	// and generations, in-flight generations flush, and the drain waiter
	// closes the daemon at quiescence (or the deadline). A second signal
	// skips the grace period and exits immediately.
	go func() {
		var sig os.Signal
		select {
		case sig = <-sigc:
		case <-stopWatch:
			return
		}
		log.Printf("ncd %s: %v: draining (deadline %s)", *name, sig, *drainDeadline)
		if err := daemon.StartDrain(*drainDeadline); err != nil {
			// Already draining or closed: nothing left to start.
			log.Printf("ncd %s: drain: %v", *name, err)
		}
		select {
		case sig = <-sigc:
			log.Printf("ncd %s: %v: immediate exit", *name, sig)
			os.Exit(1)
		case <-stopWatch:
		}
	}()

	// When the daemon closes — τ shutdown (NC_VNF_END), drain completion,
	// or /restart — unblock Accept so the process exits.
	go func() {
		ticker := time.NewTicker(200 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopWatch:
				return
			case <-ticker.C:
				if daemon.Closed() {
					ln.Close()
					return
				}
			}
		}
	}()

	for {
		c, err := ln.Accept()
		if err != nil {
			if daemon.Closed() {
				return nil
			}
			return fmt.Errorf("control accept: %w", err)
		}
		err = controller.ServeControlStream(c, daemon, registry)
		c.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			log.Printf("ncd %s: control session: %v", *name, err)
		}
		if daemon.Closed() {
			return nil
		}
	}
}

// execHandoff builds the /restart hook: replace this process with a fresh
// ncd pinned to the same bound addresses. The exec closes every inherited
// socket (Go sets CLOEXEC), freeing the ports for the replacement, and
// preserves the PID so a supervising harness's Wait keeps working.
func execHandoff(name, data, control, admin string, batch int, drainDeadline time.Duration, readyFile string) func() {
	return func() {
		exe, err := os.Executable()
		if err != nil {
			log.Printf("ncd %s: restart: %v", name, err)
			os.Exit(1)
		}
		argv := []string{exe,
			"-name", name,
			"-data", data,
			"-control", control,
			"-admin", admin,
			"-batch", strconv.Itoa(batch),
			"-drain-deadline", drainDeadline.String(),
		}
		if readyFile != "" {
			argv = append(argv, "-readyfile", readyFile)
		}
		log.Printf("ncd %s: restart: exec handoff", name)
		if err := syscall.Exec(exe, argv, os.Environ()); err != nil {
			log.Printf("ncd %s: restart exec: %v", name, err)
			os.Exit(1)
		}
	}
}

// readyInfo is the address set a daemon advertises once its listeners are
// bound (the -readyfile contents).
type readyInfo struct {
	Data    string `json:"data"`
	Control string `json:"control"`
	Admin   string `json:"admin,omitempty"`
}

// writeReadyFile atomically publishes the daemon's bound addresses.
func writeReadyFile(path string, info readyInfo) error {
	raw, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
