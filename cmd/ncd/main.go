// Command ncd is the network coding daemon: it runs one coding VNF over a
// real UDP socket and accepts control messages (NC_SETTINGS, NC_START,
// NC_FORWARD_TAB, NC_VNF_END) on a TCP control port, mirroring the
// per-node daemon of Sec. III-A.
//
//	ncd -name relay1 -data 127.0.0.1:7001 -control 127.0.0.1:8001
//
// The controller (cmd/ncctl) connects to the control port and streams
// length-prefixed JSON messages. Peer name→address bindings arrive in the
// same stream (the "peers" map), so forwarding tables can reference nodes
// by name.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncd", flag.ContinueOnError)
	name := fs.String("name", "", "this node's logical name (required)")
	dataAddr := fs.String("data", "127.0.0.1:0", "UDP address for coded traffic")
	controlAddr := fs.String("control", "127.0.0.1:0", "TCP address for control messages")
	adminAddr := fs.String("admin", "", "HTTP address for the admin endpoint (/stats, /debug/vars, /debug/pprof); empty disables it")
	batch := fs.Int("batch", emunet.DefaultRxBatch,
		"datagram I/O batch depth: recvmmsg ring size and per-destination tx coalescing depth (1 = one syscall per packet)")
	readyFile := fs.String("readyfile", "",
		"write a JSON {\"data\",\"control\",\"admin\"} address file once all listeners are up (for process harnesses); empty disables it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return errors.New("-name is required")
	}

	reg := telemetry.NewRegistry()
	registry := emunet.NewRegistry()
	udpOpts := []emunet.UDPOption{emunet.WithUDPTelemetry(reg), emunet.WithRxBatch(*batch)}
	if *batch <= 1 {
		udpOpts = append(udpOpts, emunet.WithPortableIO())
	}
	conn, err := emunet.ListenUDP(*name, *dataAddr, registry, udpOpts...)
	if err != nil {
		return err
	}
	daemon := controller.NewDaemon(conn, nil,
		dataplane.WithTelemetry(reg), dataplane.WithTxCoalesce(*batch))
	defer daemon.Close()

	adminBound := ""
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		defer adminLn.Close()
		reg.PublishExpvar("ncd_" + *name)
		go serveAdmin(adminLn, reg)
		adminBound = adminLn.Addr().String()
		log.Printf("ncd %s: admin http://%s/stats", *name, adminBound)
	}

	ln, err := net.Listen("tcp", *controlAddr)
	if err != nil {
		return fmt.Errorf("control listen: %w", err)
	}
	defer ln.Close()
	log.Printf("ncd %s: data %s control %s", *name, conn.UDPAddr(), ln.Addr())

	if *readyFile != "" {
		// Every listener is up: publish the bound addresses so a launching
		// harness can stop guessing ports. Write-then-rename keeps readers
		// from seeing a partial file.
		if err := writeReadyFile(*readyFile, readyInfo{
			Data:    conn.UDPAddr().String(),
			Control: ln.Addr().String(),
			Admin:   adminBound,
		}); err != nil {
			return fmt.Errorf("readyfile: %w", err)
		}
	}

	// When the daemon's τ shutdown fires (NC_VNF_END), unblock Accept so
	// the process exits.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		ticker := time.NewTicker(200 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopWatch:
				return
			case <-ticker.C:
				if daemon.Closed() {
					ln.Close()
					return
				}
			}
		}
	}()

	for {
		c, err := ln.Accept()
		if err != nil {
			if daemon.Closed() {
				return nil
			}
			return fmt.Errorf("control accept: %w", err)
		}
		err = controller.ServeControlStream(c, daemon, registry)
		c.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			log.Printf("ncd %s: control session: %v", *name, err)
		}
		if daemon.Closed() {
			return nil
		}
	}
}

// readyInfo is the address set a daemon advertises once its listeners are
// bound (the -readyfile contents).
type readyInfo struct {
	Data    string `json:"data"`
	Control string `json:"control"`
	Admin   string `json:"admin,omitempty"`
}

// writeReadyFile atomically publishes the daemon's bound addresses.
func writeReadyFile(path string, info readyInfo) error {
	raw, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// serveAdmin runs the observability endpoint: a JSON telemetry snapshot at
// /stats, the expvar dump at /debug/vars, and the pprof profiles under
// /debug/pprof/. It serves until the listener closes (process shutdown).
func serveAdmin(ln net.Listener, reg *telemetry.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		raw, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	_ = srv.Serve(ln)
}
