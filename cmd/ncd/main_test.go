package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -name accepted")
	}
	if err := run([]string{"-name", "x", "-data", "999.999.999.999:0"}); err == nil {
		t.Fatal("bad data address accepted")
	}
	if err := run([]string{"-name", "x", "-control", "not-an-address"}); err == nil {
		t.Fatal("bad control address accepted")
	}
}

// TestDaemonLifecycleOverTCP boots a full ncd (UDP data socket + TCP
// control port) in-process, drives it through settings → table → start →
// shutdown over the control connection, and waits for the process loop to
// exit.
func TestDaemonLifecycleOverTCP(t *testing.T) {
	// Find a control port by listening and closing (run opens its own).
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	controlAddr := probe.Addr().String()
	probe.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-name", "testnode", "-data", "127.0.0.1:0", "-control", controlAddr})
	}()

	// Connect to the control port (retry while the listener comes up).
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", controlAddr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("control port never opened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()

	send := func(m *controller.Message) {
		t.Helper()
		if err := m.Encode(conn); err != nil {
			t.Fatal(err)
		}
		ack := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(ack); err != nil || ack[0] != 0x06 {
			t.Fatalf("ack: %v %v", ack, err)
		}
	}
	send(&controller.Message{
		Signal: controller.NCSettings,
		Peers:  map[string]string{"peer1": "127.0.0.1:19999"},
		Settings: &dataplane.SessionConfig{
			ID:     1,
			Params: rlnc.Params{GenerationBlocks: 4, BlockSize: 64},
			Role:   dataplane.RoleRecoder,
		},
	})
	send(&controller.Message{Signal: controller.NCStart})
	// Shut down with a tiny τ; run() must return once the control stream
	// ends and the shutdown watcher notices the closed daemon.
	send(&controller.Message{Signal: controller.NCVNFEnd, ShutdownAfter: 10 * time.Millisecond})
	conn.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ncd did not exit after NC_VNF_END")
	}
}

// TestSigtermDrains boots an ncd in-process, configures a session, and
// sends the test process SIGTERM: the daemon must drain (refusing new
// sessions via its own signal handler, not dying on the default handler)
// and run() must return cleanly once the drain quiesces.
func TestSigtermDrains(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	controlAddr := probe.Addr().String()
	probe.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-name", "sigterm-node", "-data", "127.0.0.1:0",
			"-control", controlAddr, "-drain-deadline", "5s"})
	}()

	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", controlAddr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("control port never opened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	send := func(m *controller.Message) {
		t.Helper()
		if err := m.Encode(conn); err != nil {
			t.Fatal(err)
		}
		ack := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(ack); err != nil || ack[0] != 0x06 {
			t.Fatalf("ack: %v %v", ack, err)
		}
	}
	send(&controller.Message{
		Signal: controller.NCSettings,
		Settings: &dataplane.SessionConfig{
			ID:     1,
			Params: rlnc.Params{GenerationBlocks: 4, BlockSize: 64},
			Role:   dataplane.RoleForwarder,
		},
	})
	send(&controller.Message{Signal: controller.NCStart})

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Release the control stream: run() serves it until the client hangs
	// up, and the drain must finish without any client action beyond that.
	conn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ncd did not exit after SIGTERM drain")
	}
}

// TestAdminEndpoint exercises the admin mux directly: /stats must return
// the registry's JSON snapshot, /debug/vars the expvar dump, and
// /debug/pprof/ the profile index. (The lifecycle routes are covered by the
// controller package's admin tests.)
func TestAdminEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(dataplane.MetricRxPackets, 1).Add(0, 7)
	reg.Histogram(dataplane.MetricDecodeLatencyNs).Observe(1000)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go controller.ServeAdmin(ln, controller.AdminConfig{Registry: reg})
	base := "http://" + ln.Addr().String()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal(get("/stats"), &snap); err != nil {
		t.Fatalf("/stats is not a snapshot: %v", err)
	}
	if snap.Counters[dataplane.MetricRxPackets] != 7 {
		t.Fatalf("rx counter = %d, want 7", snap.Counters[dataplane.MetricRxPackets])
	}
	if snap.Histograms[dataplane.MetricDecodeLatencyNs].Count != 1 {
		t.Fatal("decode histogram missing from snapshot")
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}

	if !strings.Contains(string(get("/debug/pprof/")), "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}

// TestTwoDaemonsEndToEnd wires two ncd processes (in-process) into a relay
// chain via ncctl-style control pushes and verifies the TCP control path
// composes: the first daemon learns the second's UDP address via peers.
func TestTwoDaemonsEndToEnd(t *testing.T) {
	type node struct {
		control string
		done    chan error
	}
	mk := func(name string) node {
		probe, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := probe.Addr().String()
		probe.Close()
		n := node{control: addr, done: make(chan error, 1)}
		go func() {
			n.done <- run([]string{"-name", name, "-data", "127.0.0.1:0", "-control", addr})
		}()
		return n
	}
	a := mk("relayA")
	b := mk("relayB")

	push := func(n node, msgs ...*controller.Message) {
		t.Helper()
		var conn net.Conn
		var err error
		deadline := time.Now().Add(5 * time.Second)
		for {
			conn, err = net.Dial("tcp", n.control)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial %s: %v", n.control, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		defer conn.Close()
		ack := make([]byte, 1)
		for _, m := range msgs {
			if err := m.Encode(conn); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Read(ack); err != nil {
				t.Fatalf("ack: %v", err)
			}
		}
	}

	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 64}
	for _, n := range []node{a, b} {
		push(n,
			&controller.Message{
				Signal:   controller.NCSettings,
				Settings: &dataplane.SessionConfig{ID: 1, Params: params, Role: dataplane.RoleForwarder},
			},
			&controller.Message{Signal: controller.NCStart},
		)
	}
	// Tear both down.
	for _, n := range []node{a, b} {
		push(n, &controller.Message{Signal: controller.NCVNFEnd, ShutdownAfter: time.Millisecond})
		select {
		case err := <-n.done:
			if err != nil && !strings.Contains(fmt.Sprint(err), "closed") {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit")
		}
	}
}
