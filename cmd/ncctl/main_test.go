package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

func TestParseRole(t *testing.T) {
	cases := map[string]dataplane.Role{
		"recoder":   dataplane.RoleRecoder,
		"decoder":   dataplane.RoleDecoder,
		"forwarder": dataplane.RoleForwarder,
	}
	for name, want := range cases {
		got, err := parseRole(name)
		if err != nil || got != want {
			t.Fatalf("parseRole(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseRole("alchemist"); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	raw := []byte(`{
	  "sessions": [{
	    "id": 1, "blocks": 4, "blockSize": 1460, "redundancy": 1,
	    "roles": {"relay1": "recoder", "recv1": "decoder"},
	    "inPerGen": {"relay1": 4},
	    "tables": {"relay1": [{"addrs": ["recv1"], "perGen": 4}]}
	  }],
	  "peers": {"relay1": "127.0.0.1:7001", "recv1": "127.0.0.1:7002"},
	  "daemons": {"relay1": "127.0.0.1:8001"}
	}`)
	var cfg deployConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sessions) != 1 || cfg.Sessions[0].Roles["relay1"] != "recoder" {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if cfg.Sessions[0].Tables["relay1"][0].PerGen != 4 {
		t.Fatal("table quota lost")
	}
}

// startTestDaemon runs a real daemon behind a TCP control listener, the
// way cmd/ncd does, and returns its control address.
func startTestDaemon(t *testing.T) (string, *controller.Daemon) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	d := controller.NewDaemon(n.Host("relay1"), nil)
	t.Cleanup(func() { d.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_ = controller.ServeControlStream(c, d, nil)
			}()
		}
	}()
	return ln.Addr().String(), d
}

func TestStartAgainstLiveDaemon(t *testing.T) {
	addr, d := startTestDaemon(t)
	cfg := deployConfig{
		Sessions: []sessionConfig{{
			ID:         1,
			Blocks:     4,
			BlockSize:  64,
			Redundancy: 1,
			Roles:      map[string]string{"relay1": "recoder"},
			InPerGen:   map[string]int{"relay1": 4},
			Tables:     map[string][]tableGroup{"relay1": {{Addrs: []string{"recv1"}, PerGen: 4}}},
		}},
		Daemons: map[string]string{"relay1": addr},
	}
	if err := start(cfg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Applied() < 3 { // settings + table + start
		if time.Now().After(deadline) {
			t.Fatalf("daemon applied %d messages", d.Applied())
		}
		time.Sleep(time.Millisecond)
	}
	if d.VNF().Table().NextHops(1, 0)[0] != "recv1" {
		t.Fatal("table not pushed")
	}
}

func TestStopAgainstLiveDaemon(t *testing.T) {
	addr, d := startTestDaemon(t)
	cfg := deployConfig{Daemons: map[string]string{"relay1": addr}}
	if err := stop(cfg, time.Hour); err != nil {
		t.Fatal(err)
	}
	if d.LastSignal() != controller.NCVNFEnd {
		t.Fatalf("last signal = %v", d.LastSignal())
	}
	if d.Closed() {
		t.Fatal("daemon shut down before tau")
	}
}

func TestRunArgsValidation(t *testing.T) {
	if err := run([]string{"start"}); err == nil {
		t.Fatal("missing -config accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	os.WriteFile(path, []byte(`{}`), 0o644)
	if err := run([]string{"-config", path}); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"-config", path, "dance"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"-config", path + ".missing", "start"}); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte(`{not json`), 0o644)
	if err := run([]string{"-config", path, "start"}); err == nil {
		t.Fatal("bad json accepted")
	}
}

// statsServer serves a registry snapshot the way ncd's admin endpoint does.
func statsServer(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		raw, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestStatsFetchesSnapshots(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dataplane_rx_packets", 1).Add(0, 42)
	addr := statsServer(t, reg)

	cfg := deployConfig{Admin: map[string]string{"relay1": addr}}
	var out strings.Builder
	if err := stats(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "relay1: ") {
		t.Fatalf("output missing node prefix: %q", got)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(strings.TrimPrefix(got, "relay1: ")), &snap); err != nil {
		t.Fatalf("output is not a JSON snapshot: %v\n%s", err, got)
	}
	if snap.Counters["dataplane_rx_packets"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["dataplane_rx_packets"])
	}
}

func TestStatsReportsUnreachableNodes(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr := statsServer(t, reg)

	// A port from a just-closed listener: connection refused, quickly.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	old := pushTimeout
	pushTimeout = 2 * time.Second
	defer func() { pushTimeout = old }()

	cfg := deployConfig{Admin: map[string]string{"up": addr, "down": deadAddr}}
	var out strings.Builder
	if err := stats(cfg, &out); err == nil {
		t.Fatal("unreachable node should surface an error")
	}
	got := out.String()
	if !strings.Contains(got, "down: unreachable") {
		t.Fatalf("missing unreachable report:\n%s", got)
	}
	if !strings.Contains(got, "up: {") {
		t.Fatalf("reachable node not reported:\n%s", got)
	}
}

func TestStatsRequiresAdminSection(t *testing.T) {
	if err := stats(deployConfig{}, &strings.Builder{}); err == nil {
		t.Fatal("config without admin section accepted")
	}
}

func TestExampleConfigParses(t *testing.T) {
	raw, err := os.ReadFile("deploy.example.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg deployConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatalf("example config invalid: %v", err)
	}
	if len(cfg.Sessions) != 1 || len(cfg.Daemons) != 3 || len(cfg.Peers) != 3 || len(cfg.Admin) != 3 {
		t.Fatalf("example config unexpected shape: %+v", cfg)
	}
	for node, role := range cfg.Sessions[0].Roles {
		if _, err := parseRole(role); err != nil {
			t.Fatalf("example config role for %s: %v", node, err)
		}
	}
}
