package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/emunet"
	"ncfn/internal/telemetry"
)

// testDeploy is a two-node deployment: a recoding relay feeding a decoder.
func testDeploy() *controller.DeployFile {
	return &controller.DeployFile{
		Version: 1,
		Sessions: []controller.DeploySession{{
			ID: 1, Blocks: 4, BlockSize: 64, Redundancy: 1,
			Roles:    map[string]string{"relay1": "recoder", "recv1": "decoder"},
			InPerGen: map[string]int{"relay1": 4},
			Tables: map[string][]controller.DeployHopGroup{
				"relay1": {{Addrs: []string{"recv1"}, PerGen: 4}},
			},
		}},
		Peers:   map[string]string{"relay1": "127.0.0.1:7001", "recv1": "127.0.0.1:7002"},
		Daemons: map[string]string{"relay1": "127.0.0.1:8001", "recv1": "127.0.0.1:8002"},
		Admin:   map[string]string{"relay1": "127.0.0.1:9001", "recv1": "127.0.0.1:9002"},
	}
}

// startTestDaemon runs a real daemon behind a TCP control listener, the
// way cmd/ncd does, and returns its control address.
func startTestDaemon(t *testing.T, name string) (string, *controller.Daemon) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	d := controller.NewDaemon(n.Host(name), nil)
	t.Cleanup(func() { d.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_ = controller.ServeControlStream(c, d, nil)
			}()
		}
	}()
	return ln.Addr().String(), d
}

// adminTestServer serves a daemon's admin endpoint over httptest and
// returns its host:port.
func adminTestServer(t *testing.T, d *controller.Daemon) string {
	t.Helper()
	srv := httptest.NewServer(controller.NewAdminMux(controller.AdminConfig{
		Daemon:   d,
		Registry: d.VNF().Telemetry(),
		Node:     "relay1",
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestStartAgainstLiveDaemon(t *testing.T) {
	addr, d := startTestDaemon(t, "relay1")
	f := testDeploy()
	f.Daemons = map[string]string{"relay1": addr}
	var out strings.Builder
	if err := start(f, &out); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Applied() < 3 { // settings + table + start
		if time.Now().After(deadline) {
			t.Fatalf("daemon applied %d messages", d.Applied())
		}
		time.Sleep(time.Millisecond)
	}
	if d.VNF().Table().NextHops(1, 0)[0] != "recv1" {
		t.Fatal("table not pushed")
	}
	if !strings.Contains(out.String(), "started relay1") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestStopAgainstLiveDaemon(t *testing.T) {
	addr, d := startTestDaemon(t, "relay1")
	f := &controller.DeployFile{Daemons: map[string]string{"relay1": addr}}
	if err := stop(f, time.Hour, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if d.LastSignal() != controller.NCVNFEnd {
		t.Fatalf("last signal = %v", d.LastSignal())
	}
	if d.Closed() {
		t.Fatal("daemon shut down before tau")
	}
}

func TestRunArgsValidation(t *testing.T) {
	if err := run([]string{"start"}); err == nil {
		t.Fatal("missing -config accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	os.WriteFile(path, []byte(`{}`), 0o644)
	if err := run([]string{"-config", path}); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"-config", path, "dance"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"-config", path + ".missing", "start"}); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte(`{not json`), 0o644)
	if err := run([]string{"-config", path, "start"}); err == nil {
		t.Fatal("bad json accepted")
	}
	// The deploy file is validated before any command runs.
	os.WriteFile(path, []byte(`{"sessions":[{"id":1,"roles":{"n":"wizard"}}]}`), 0o644)
	if err := run([]string{"-config", path, "start"}); err == nil {
		t.Fatal("invalid role accepted")
	}
	// -nodes must name daemons from the file.
	os.WriteFile(path, []byte(`{"sessions":[],"daemons":{"a":"127.0.0.1:1"}}`), 0o644)
	if err := run([]string{"-config", path, "-nodes", "ghost", "drain"}); err == nil {
		t.Fatal("unknown -nodes entry accepted")
	}
}

func TestSelectNodes(t *testing.T) {
	f := testDeploy()
	all, err := selectNodes(f, "")
	if err != nil || len(all) != 2 || all[0] != "recv1" || all[1] != "relay1" {
		t.Fatalf("all nodes = %v, %v", all, err)
	}
	sub, err := selectNodes(f, " relay1 ")
	if err != nil || len(sub) != 1 || sub[0] != "relay1" {
		t.Fatalf("subset = %v, %v", sub, err)
	}
	if _, err := selectNodes(f, "relay1,ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := selectNodes(f, " , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// statsServer serves a registry snapshot the way ncd's admin endpoint does.
func statsServer(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		raw, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestStatsFetchesSnapshots(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dataplane_rx_packets", 1).Add(0, 42)
	addr := statsServer(t, reg)

	f := &controller.DeployFile{Admin: map[string]string{"relay1": addr}}
	var out strings.Builder
	if err := stats(f, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "relay1: ") {
		t.Fatalf("output missing node prefix: %q", got)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(strings.TrimPrefix(got, "relay1: ")), &snap); err != nil {
		t.Fatalf("output is not a JSON snapshot: %v\n%s", err, got)
	}
	if snap.Counters["dataplane_rx_packets"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["dataplane_rx_packets"])
	}
}

func TestStatsReportsUnreachableNodes(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr := statsServer(t, reg)

	// A port from a just-closed listener: connection refused, quickly.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	old := pushTimeout
	pushTimeout = 2 * time.Second
	defer func() { pushTimeout = old }()

	f := &controller.DeployFile{Admin: map[string]string{"up": addr, "down": deadAddr}}
	var out strings.Builder
	if err := stats(f, &out); err == nil {
		t.Fatal("unreachable node should surface an error")
	}
	got := out.String()
	if !strings.Contains(got, "down: unreachable") {
		t.Fatalf("missing unreachable report:\n%s", got)
	}
	if !strings.Contains(got, "up: {") {
		t.Fatalf("reachable node not reported:\n%s", got)
	}
}

func TestStatsRequiresAdminSection(t *testing.T) {
	if err := stats(&controller.DeployFile{}, &strings.Builder{}); err == nil {
		t.Fatal("config without admin section accepted")
	}
}

func TestDrainCommand(t *testing.T) {
	_, d := startTestDaemon(t, "relay1")
	addr := adminTestServer(t, d)
	f := testDeploy()
	f.Admin = map[string]string{"relay1": addr}

	var out strings.Builder
	if err := drain(f, []string{"relay1"}, 5*time.Second, &out); err != nil {
		t.Fatal(err)
	}
	if !d.Draining() {
		t.Fatal("daemon not draining after ncctl drain")
	}
	if !strings.Contains(out.String(), "draining relay1") {
		t.Fatalf("output: %q", out.String())
	}
	// Second drain surfaces the 409 as an error.
	if err := drain(f, []string{"relay1"}, 5*time.Second, &out); err == nil {
		t.Fatal("double drain did not error")
	}
	// A node missing its admin address errors too.
	if err := drain(f, []string{"recv1"}, 5*time.Second, &out); err == nil {
		t.Fatal("node without admin address accepted")
	}
}

func TestReloadCommand(t *testing.T) {
	_, d := startTestDaemon(t, "relay1")
	addr := adminTestServer(t, d)
	f := testDeploy()
	f.Admin = map[string]string{"relay1": addr}
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := reload(f, raw, []string{"relay1"}, &out); err != nil {
		t.Fatal(err)
	}
	if d.DeployVersion() != 1 {
		t.Fatalf("deploy version = %d", d.DeployVersion())
	}
	if !strings.Contains(out.String(), `"sessionsAdded":1`) {
		t.Fatalf("output: %q", out.String())
	}
	// Stale replay surfaces the 409.
	if err := reload(f, raw, []string{"relay1"}, &out); err == nil {
		t.Fatal("stale reload did not error")
	}
}

func TestUpstreamsOf(t *testing.T) {
	f := testDeploy()
	if ups := upstreamsOf(f, "recv1"); len(ups) != 1 || ups[0] != "relay1" {
		t.Fatalf("upstreams of recv1 = %v", ups)
	}
	if ups := upstreamsOf(f, "relay1"); len(ups) != 0 {
		t.Fatalf("upstreams of relay1 = %v", ups)
	}
}

func TestRollingRestartUnsupported(t *testing.T) {
	// The admin endpoint without a restart hook answers 501; the walker must
	// stop rather than silently skipping the node.
	_, d := startTestDaemon(t, "relay1")
	addr := adminTestServer(t, d)
	f := testDeploy()
	f.Admin = map[string]string{"relay1": addr}
	err := rollingRestart(f, []string{"relay1"}, time.Second, 2*time.Second, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Fatalf("rolling restart against hookless daemon: %v", err)
	}
	if d.Draining() {
		t.Fatal("501 restart left the daemon draining")
	}
}

// TestWaitHealthy drives the poller through the three phases a restart
// produces: unreachable, still-draining old process, healthy replacement.
func TestWaitHealthy(t *testing.T) {
	var phase int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		switch phase {
		case 0:
			phase++
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
		case 1:
			phase++
			_, _ = io.WriteString(w, `{"state":"draining","draining":true}`)
		default:
			_, _ = io.WriteString(w, `{"state":"running","draining":false}`)
		}
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := waitHealthy(client, addr, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	// An endpoint that never turns healthy times out with the last error.
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, `{"state":"quiesced","draining":true}`)
	}))
	defer stuck.Close()
	err := waitHealthy(client, strings.TrimPrefix(stuck.URL, "http://"), time.Now().Add(200*time.Millisecond))
	if err == nil {
		t.Fatal("stuck drain reported healthy")
	}
}

func TestExampleConfigParses(t *testing.T) {
	raw, err := os.ReadFile("deploy.example.json")
	if err != nil {
		t.Fatal(err)
	}
	f, err := controller.ParseDeployFile(raw)
	if err != nil {
		t.Fatalf("example config invalid: %v", err)
	}
	if len(f.Sessions) != 1 || len(f.Daemons) != 3 || len(f.Peers) != 3 || len(f.Admin) != 3 {
		t.Fatalf("example config unexpected shape: %+v", f)
	}
}
