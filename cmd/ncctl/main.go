// Command ncctl is the central controller CLI: it pushes session settings,
// peer bindings, and forwarding tables to running ncd daemons over their
// TCP control ports, and can end sessions / shut VNFs down — the
// operational surface of Sec. III-A.
//
// The deployment is described by a JSON file:
//
//	{
//	  "sessions": [{
//	    "id": 1, "blocks": 4, "blockSize": 1460, "redundancy": 1,
//	    "roles": {"relay1": "recoder", "recv1": "decoder"},
//	    "inPerGen": {"relay1": 4},
//	    "tables": {"relay1": [{"addrs": ["recv1"], "perGen": 4}]}
//	  }],
//	  "peers": {"relay1": "127.0.0.1:7001", "recv1": "127.0.0.1:7002"},
//	  "daemons": {"relay1": "127.0.0.1:8001", "recv1": "127.0.0.1:8002"}
//	}
//
// Usage:
//
//	ncctl -config deploy.json start     # NC_SETTINGS + NC_FORWARD_TAB + NC_START
//	ncctl -config deploy.json stop -tau 10m
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// deployConfig is the JSON schema ncctl reads.
type deployConfig struct {
	Sessions []sessionConfig   `json:"sessions"`
	Peers    map[string]string `json:"peers"`
	Daemons  map[string]string `json:"daemons"`
}

type sessionConfig struct {
	ID         int                     `json:"id"`
	Blocks     int                     `json:"blocks"`
	BlockSize  int                     `json:"blockSize"`
	Redundancy int                     `json:"redundancy"`
	Roles      map[string]string       `json:"roles"`
	InPerGen   map[string]int          `json:"inPerGen"`
	Tables     map[string][]tableGroup `json:"tables"`
}

type tableGroup struct {
	Addrs  []string `json:"addrs"`
	PerGen int      `json:"perGen"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncctl", flag.ContinueOnError)
	configPath := fs.String("config", "", "deployment JSON (required)")
	tau := fs.Duration("tau", 10*time.Minute, "shutdown delay for stop")
	timeout := fs.Duration("timeout", controller.DefaultPushTimeout, "per-daemon push timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		pushTimeout = *timeout
	}
	if *configPath == "" {
		return errors.New("-config is required")
	}
	if fs.NArg() != 1 {
		return errors.New("expected one command: start | stop")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg deployConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", *configPath, err)
	}
	switch cmd := fs.Arg(0); cmd {
	case "start":
		return start(cfg)
	case "stop":
		return stop(cfg, *tau)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseRole maps a config string to a dataplane role.
func parseRole(s string) (dataplane.Role, error) {
	switch s {
	case "recoder":
		return dataplane.RoleRecoder, nil
	case "decoder":
		return dataplane.RoleDecoder, nil
	case "forwarder":
		return dataplane.RoleForwarder, nil
	default:
		return 0, fmt.Errorf("unknown role %q", s)
	}
}

// pushTimeout bounds each daemon exchange; a push never blocks forever on a
// dead daemon (see -timeout).
var pushTimeout = controller.DefaultPushTimeout

// push sends messages to one daemon, waiting for per-message acks.
func push(daemonAddr string, msgs []*controller.Message) error {
	ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
	defer cancel()
	d := net.Dialer{}
	c, err := d.DialContext(ctx, "tcp", daemonAddr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", daemonAddr, err)
	}
	defer c.Close()
	if err := controller.PushMessages(ctx, c, msgs...); err != nil {
		return fmt.Errorf("push to %s: %w", daemonAddr, err)
	}
	return nil
}

// nodesOf lists the daemon nodes in deterministic order.
func nodesOf(cfg deployConfig) []string {
	nodes := make([]string, 0, len(cfg.Daemons))
	for n := range cfg.Daemons {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// start pushes settings, peers, tables, and NC_START to every daemon.
func start(cfg deployConfig) error {
	for _, node := range nodesOf(cfg) {
		var msgs []*controller.Message
		for _, s := range cfg.Sessions {
			roleName, ok := s.Roles[node]
			if !ok {
				continue
			}
			role, err := parseRole(roleName)
			if err != nil {
				return err
			}
			blocks := s.Blocks
			if blocks == 0 {
				blocks = rlnc.DefaultGenerationBlocks
			}
			blockSize := s.BlockSize
			if blockSize == 0 {
				blockSize = rlnc.DefaultBlockSize
			}
			msgs = append(msgs, &controller.Message{
				Signal: controller.NCSettings,
				Peers:  cfg.Peers,
				Settings: &dataplane.SessionConfig{
					ID:         ncproto.SessionID(s.ID),
					Params:     rlnc.Params{GenerationBlocks: blocks, BlockSize: blockSize},
					Role:       role,
					Redundancy: s.Redundancy,
					InPerGen:   s.InPerGen[node],
				},
			})
			if groups, ok := s.Tables[node]; ok {
				table := map[ncproto.SessionID][]dataplane.HopGroup{}
				var hops []dataplane.HopGroup
				for _, g := range groups {
					hops = append(hops, dataplane.HopGroup{Addrs: g.Addrs, PerGen: g.PerGen})
				}
				table[ncproto.SessionID(s.ID)] = hops
				msgs = append(msgs, &controller.Message{
					Signal: controller.NCForwardTab,
					Table:  table,
				})
			}
		}
		if len(msgs) == 0 {
			continue
		}
		msgs = append(msgs, &controller.Message{Signal: controller.NCStart})
		if err := push(cfg.Daemons[node], msgs); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Printf("started %s (%d messages)\n", node, len(msgs))
	}
	return nil
}

// stop sends NC_VNF_END with τ to every daemon.
func stop(cfg deployConfig, tau time.Duration) error {
	for _, node := range nodesOf(cfg) {
		msg := &controller.Message{Signal: controller.NCVNFEnd, ShutdownAfter: tau}
		if err := push(cfg.Daemons[node], []*controller.Message{msg}); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Printf("stopping %s in %v\n", node, tau)
	}
	return nil
}
