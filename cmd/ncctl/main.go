// Command ncctl is the central controller CLI: it pushes session settings,
// peer bindings, and forwarding tables to running ncd daemons over their
// TCP control ports, and can end sessions / shut VNFs down — the
// operational surface of Sec. III-A.
//
// The deployment is described by a JSON file:
//
//	{
//	  "sessions": [{
//	    "id": 1, "blocks": 4, "blockSize": 1460, "redundancy": 1,
//	    "roles": {"relay1": "recoder", "recv1": "decoder"},
//	    "inPerGen": {"relay1": 4},
//	    "tables": {"relay1": [{"addrs": ["recv1"], "perGen": 4}]}
//	  }],
//	  "peers": {"relay1": "127.0.0.1:7001", "recv1": "127.0.0.1:7002"},
//	  "daemons": {"relay1": "127.0.0.1:8001", "recv1": "127.0.0.1:8002"}
//	}
//
// Usage:
//
//	ncctl -config deploy.json start     # NC_SETTINGS + NC_FORWARD_TAB + NC_START
//	ncctl -config deploy.json stop -tau 10m
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// deployConfig is the JSON schema ncctl reads.
type deployConfig struct {
	Sessions []sessionConfig   `json:"sessions"`
	Peers    map[string]string `json:"peers"`
	Daemons  map[string]string `json:"daemons"`
	// Admin maps node names to ncd admin endpoints (-admin), read by the
	// stats command.
	Admin map[string]string `json:"admin"`
}

type sessionConfig struct {
	ID         int `json:"id"`
	Blocks     int `json:"blocks"`
	BlockSize  int `json:"blockSize"`
	Redundancy int `json:"redundancy"`
	// Field selects the coefficient field: 2 for GF(2) (bit-packed
	// word-wide codec), 256 or 0 for GF(2^8). Per session, so one
	// deployment can mix fields across sessions.
	Field    int                     `json:"field"`
	Roles    map[string]string       `json:"roles"`
	InPerGen map[string]int          `json:"inPerGen"`
	Tables   map[string][]tableGroup `json:"tables"`
}

type tableGroup struct {
	Addrs  []string `json:"addrs"`
	PerGen int      `json:"perGen"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncctl", flag.ContinueOnError)
	configPath := fs.String("config", "", "deployment JSON (required)")
	tau := fs.Duration("tau", 10*time.Minute, "shutdown delay for stop")
	timeout := fs.Duration("timeout", controller.DefaultPushTimeout, "per-daemon push timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		pushTimeout = *timeout
	}
	if *configPath == "" {
		return errors.New("-config is required")
	}
	if fs.NArg() != 1 {
		return errors.New("expected one command: start | stop | stats")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg deployConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", *configPath, err)
	}
	switch cmd := fs.Arg(0); cmd {
	case "start":
		return start(cfg)
	case "stop":
		return stop(cfg, *tau)
	case "stats":
		return stats(cfg, os.Stdout)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseField maps the JSON field order (2, 256, or 0 for the default)
// to the gf.Field enum.
func parseField(order int) (gf.Field, error) {
	switch order {
	case 0, 256:
		return gf.GF256, nil
	case 2:
		return gf.GF2, nil
	default:
		return 0, fmt.Errorf("unknown field order %d (want 2 or 256)", order)
	}
}

// parseRole maps a config string to a dataplane role.
func parseRole(s string) (dataplane.Role, error) {
	switch s {
	case "recoder":
		return dataplane.RoleRecoder, nil
	case "decoder":
		return dataplane.RoleDecoder, nil
	case "forwarder":
		return dataplane.RoleForwarder, nil
	default:
		return 0, fmt.Errorf("unknown role %q", s)
	}
}

// pushTimeout bounds each individual RPC — the dial, every message push,
// and every stats fetch separately — so -timeout means "how long one
// exchange may take", not a budget the whole command shares (see -timeout).
var pushTimeout = controller.DefaultPushTimeout

// push sends messages to one daemon, waiting for per-message acks. Each
// message is its own RPC with a fresh deadline: a daemon that acks slowly
// (but within the timeout) cannot starve the messages behind it.
func push(daemonAddr string, msgs []*controller.Message) error {
	dialCtx, dialCancel := context.WithTimeout(context.Background(), pushTimeout)
	d := net.Dialer{}
	c, err := d.DialContext(dialCtx, "tcp", daemonAddr)
	dialCancel()
	if err != nil {
		return fmt.Errorf("dial %s: %w", daemonAddr, err)
	}
	defer c.Close()
	for _, m := range msgs {
		ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
		err := controller.PushMessages(ctx, c, m)
		cancel()
		if err != nil {
			return fmt.Errorf("push to %s: %w", daemonAddr, err)
		}
	}
	return nil
}

// stats fetches each daemon's telemetry snapshot from its admin endpoint
// and prints it. Every fetch is bounded by the per-RPC timeout, so one
// dead daemon delays the report by at most one timeout before it is
// reported as unreachable.
func stats(cfg deployConfig, w io.Writer) error {
	if len(cfg.Admin) == 0 {
		return errors.New(`config has no "admin" section (map node -> ncd -admin address)`)
	}
	nodes := make([]string, 0, len(cfg.Admin))
	for n := range cfg.Admin {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	client := &http.Client{Timeout: pushTimeout}
	var firstErr error
	for _, node := range nodes {
		raw, err := fetchStats(client, cfg.Admin[node])
		if err != nil {
			fmt.Fprintf(w, "%s: unreachable: %v\n", node, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", node, err)
			}
			continue
		}
		fmt.Fprintf(w, "%s: %s\n", node, raw)
	}
	return firstErr
}

// fetchStats GETs one admin endpoint's /stats document.
func fetchStats(client *http.Client, addr string) ([]byte, error) {
	resp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// nodesOf lists the daemon nodes in deterministic order.
func nodesOf(cfg deployConfig) []string {
	nodes := make([]string, 0, len(cfg.Daemons))
	for n := range cfg.Daemons {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// start pushes settings, peers, tables, and NC_START to every daemon.
func start(cfg deployConfig) error {
	for _, node := range nodesOf(cfg) {
		var msgs []*controller.Message
		for _, s := range cfg.Sessions {
			roleName, ok := s.Roles[node]
			if !ok {
				continue
			}
			role, err := parseRole(roleName)
			if err != nil {
				return err
			}
			blocks := s.Blocks
			if blocks == 0 {
				blocks = rlnc.DefaultGenerationBlocks
			}
			blockSize := s.BlockSize
			if blockSize == 0 {
				blockSize = rlnc.DefaultBlockSize
			}
			field, err := parseField(s.Field)
			if err != nil {
				return fmt.Errorf("session %d: %w", s.ID, err)
			}
			params := rlnc.Params{GenerationBlocks: blocks, BlockSize: blockSize, Field: field}
			if err := params.Validate(); err != nil {
				return fmt.Errorf("session %d: %w", s.ID, err)
			}
			msgs = append(msgs, &controller.Message{
				Signal: controller.NCSettings,
				Peers:  cfg.Peers,
				Settings: &dataplane.SessionConfig{
					ID:         ncproto.SessionID(s.ID),
					Params:     params,
					Role:       role,
					Redundancy: s.Redundancy,
					InPerGen:   s.InPerGen[node],
				},
			})
			if groups, ok := s.Tables[node]; ok {
				table := map[ncproto.SessionID][]dataplane.HopGroup{}
				var hops []dataplane.HopGroup
				for _, g := range groups {
					hops = append(hops, dataplane.HopGroup{Addrs: g.Addrs, PerGen: g.PerGen})
				}
				table[ncproto.SessionID(s.ID)] = hops
				msgs = append(msgs, &controller.Message{
					Signal: controller.NCForwardTab,
					Table:  table,
				})
			}
		}
		if len(msgs) == 0 {
			continue
		}
		msgs = append(msgs, &controller.Message{Signal: controller.NCStart})
		if err := push(cfg.Daemons[node], msgs); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Printf("started %s (%d messages)\n", node, len(msgs))
	}
	return nil
}

// stop sends NC_VNF_END with τ to every daemon.
func stop(cfg deployConfig, tau time.Duration) error {
	for _, node := range nodesOf(cfg) {
		msg := &controller.Message{Signal: controller.NCVNFEnd, ShutdownAfter: tau}
		if err := push(cfg.Daemons[node], []*controller.Message{msg}); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Printf("stopping %s in %v\n", node, tau)
	}
	return nil
}
