// Command ncctl is the central controller CLI: it pushes session settings,
// peer bindings, and forwarding tables to running ncd daemons over their
// TCP control ports, and drives the operational lifecycle — graceful
// drains, deploy-file hot-reloads, and one-at-a-time rolling restarts —
// over their admin endpoints. The deployment schema is
// controller.DeployFile (see deploy.example.json).
//
// Usage:
//
//	ncctl -config deploy.json start            # NC_SETTINGS + NC_FORWARD_TAB + NC_START
//	ncctl -config deploy.json stop -tau 10m    # NC_VNF_END with τ
//	ncctl -config deploy.json stats            # per-node /stats snapshots
//	ncctl -config deploy.json drain            # POST /drain to every node
//	ncctl -config deploy.json reload           # POST the file to every /reload
//	ncctl -config deploy.json rolling-restart  # drain→restart→reconfigure, one node at a time
//
// -nodes restricts drain/reload/rolling-restart to a comma-separated node
// subset (e.g. only the relays, never the decoders).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ncfn/internal/controller"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncctl", flag.ContinueOnError)
	configPath := fs.String("config", "", "deployment JSON (required)")
	tau := fs.Duration("tau", 10*time.Minute, "shutdown delay for stop")
	timeout := fs.Duration("timeout", controller.DefaultPushTimeout, "per-daemon push timeout")
	nodesFlag := fs.String("nodes", "", "comma-separated node subset for drain/reload/rolling-restart (default: all daemons)")
	drainDeadline := fs.Duration("drain-deadline", controller.DefaultDrainDeadline,
		"drain deadline passed to /drain and /restart")
	wait := fs.Duration("wait", time.Minute,
		"how long rolling-restart waits for each node to drain, restart, and come back healthy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		pushTimeout = *timeout
	}
	if *configPath == "" {
		return errors.New("-config is required")
	}
	if fs.NArg() != 1 {
		return errors.New("expected one command: start | stop | stats | drain | reload | rolling-restart")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	f, err := controller.ParseDeployFile(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *configPath, err)
	}
	switch cmd := fs.Arg(0); cmd {
	case "start":
		return start(f, os.Stdout)
	case "stop":
		return stop(f, *tau, os.Stdout)
	case "stats":
		return stats(f, os.Stdout)
	case "drain":
		nodes, err := selectNodes(f, *nodesFlag)
		if err != nil {
			return err
		}
		return drain(f, nodes, *drainDeadline, os.Stdout)
	case "reload":
		nodes, err := selectNodes(f, *nodesFlag)
		if err != nil {
			return err
		}
		return reload(f, raw, nodes, os.Stdout)
	case "rolling-restart":
		nodes, err := selectNodes(f, *nodesFlag)
		if err != nil {
			return err
		}
		return rollingRestart(f, nodes, *drainDeadline, *wait, os.Stdout)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// selectNodes resolves the -nodes filter against the deploy file's daemon
// list: empty means every daemon, and every named node must exist.
func selectNodes(f *controller.DeployFile, filter string) ([]string, error) {
	if filter == "" {
		return f.Nodes(), nil
	}
	var nodes []string
	for _, n := range strings.Split(filter, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := f.Daemons[n]; !ok {
			return nil, fmt.Errorf("-nodes: %q is not in the deploy file's daemons", n)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, errors.New("-nodes selected no nodes")
	}
	sort.Strings(nodes)
	return nodes, nil
}

// pushTimeout bounds each individual RPC — the dial, every message push,
// and every stats fetch separately — so -timeout means "how long one
// exchange may take", not a budget the whole command shares (see -timeout).
var pushTimeout = controller.DefaultPushTimeout

// push sends messages to one daemon, waiting for per-message acks. Each
// message is its own RPC with a fresh deadline: a daemon that acks slowly
// (but within the timeout) cannot starve the messages behind it.
func push(daemonAddr string, msgs []*controller.Message) error {
	dialCtx, dialCancel := context.WithTimeout(context.Background(), pushTimeout)
	d := net.Dialer{}
	c, err := d.DialContext(dialCtx, "tcp", daemonAddr)
	dialCancel()
	if err != nil {
		return fmt.Errorf("dial %s: %w", daemonAddr, err)
	}
	defer c.Close()
	for _, m := range msgs {
		ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
		err := controller.PushMessages(ctx, c, m)
		cancel()
		if err != nil {
			return fmt.Errorf("push to %s: %w", daemonAddr, err)
		}
	}
	return nil
}

// pushRetry pushes with dial retries until the deadline: after a restart the
// replacement daemon's control port may take a moment to come back.
func pushRetry(daemonAddr string, msgs []*controller.Message, deadline time.Time) error {
	for {
		err := push(daemonAddr, msgs)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stats fetches each daemon's telemetry snapshot from its admin endpoint
// and prints it. Every fetch is bounded by the per-RPC timeout, so one
// dead daemon delays the report by at most one timeout before it is
// reported as unreachable.
func stats(f *controller.DeployFile, w io.Writer) error {
	if len(f.Admin) == 0 {
		return errors.New(`config has no "admin" section (map node -> ncd -admin address)`)
	}
	nodes := make([]string, 0, len(f.Admin))
	for n := range f.Admin {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	client := &http.Client{Timeout: pushTimeout}
	var firstErr error
	for _, node := range nodes {
		raw, err := fetchStats(client, f.Admin[node])
		if err != nil {
			fmt.Fprintf(w, "%s: unreachable: %v\n", node, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", node, err)
			}
			continue
		}
		fmt.Fprintf(w, "%s: %s\n", node, raw)
	}
	return firstErr
}

// fetchStats GETs one admin endpoint's /stats document.
func fetchStats(client *http.Client, addr string) ([]byte, error) {
	resp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// adminPost POSTs to one admin endpoint and returns the status and body.
func adminPost(client *http.Client, addr, pathAndQuery string, body []byte) (int, []byte, error) {
	resp, err := client.Post("http://"+addr+pathAndQuery, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// adminAddr resolves one node's admin endpoint.
func adminAddr(f *controller.DeployFile, node string) (string, error) {
	addr, ok := f.Admin[node]
	if !ok {
		return "", fmt.Errorf(`node %s has no "admin" address in the deploy file`, node)
	}
	return addr, nil
}

// start pushes settings, peers, tables, and NC_START to every daemon.
func start(f *controller.DeployFile, w io.Writer) error {
	for _, node := range f.Nodes() {
		msgs, err := f.NodeMessages(node)
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			continue
		}
		if err := push(f.Daemons[node], msgs); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Fprintf(w, "started %s (%d messages)\n", node, len(msgs))
	}
	return nil
}

// stop sends NC_VNF_END with τ to every daemon.
func stop(f *controller.DeployFile, tau time.Duration, w io.Writer) error {
	for _, node := range f.Nodes() {
		msg := &controller.Message{Signal: controller.NCVNFEnd, ShutdownAfter: tau}
		if err := push(f.Daemons[node], []*controller.Message{msg}); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Fprintf(w, "stopping %s in %v\n", node, tau)
	}
	return nil
}

// drain POSTs /drain to the selected nodes: each stops admitting new
// sessions and generations, flushes in flight, and exits at quiescence (or
// the deadline).
func drain(f *controller.DeployFile, nodes []string, deadline time.Duration, w io.Writer) error {
	client := &http.Client{Timeout: pushTimeout}
	for _, node := range nodes {
		addr, err := adminAddr(f, node)
		if err != nil {
			return err
		}
		code, body, err := adminPost(client, addr, "/drain?deadline="+deadline.String(), nil)
		if err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("node %s: drain: %d %s", node, code, strings.TrimSpace(string(body)))
		}
		fmt.Fprintf(w, "draining %s (deadline %v)\n", node, deadline)
	}
	return nil
}

// reload POSTs the deploy file to the selected nodes' /reload endpoints;
// each daemon diffs it against its live state and hot-applies the changes
// without a restart.
func reload(f *controller.DeployFile, raw []byte, nodes []string, w io.Writer) error {
	client := &http.Client{Timeout: pushTimeout}
	for _, node := range nodes {
		addr, err := adminAddr(f, node)
		if err != nil {
			return err
		}
		code, body, err := adminPost(client, addr, "/reload", raw)
		if err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("node %s: reload: %d %s", node, code, strings.TrimSpace(string(body)))
		}
		fmt.Fprintf(w, "reloaded %s: %s\n", node, strings.TrimSpace(string(body)))
	}
	return nil
}

// drainStatusDoc mirrors the admin /drain status document.
type drainStatusDoc struct {
	State    string `json:"state"`
	Draining bool   `json:"draining"`
}

// waitHealthy polls one admin endpoint until it reports a running (not
// draining) daemon — i.e. until the restarted replacement process answers —
// or the deadline passes.
func waitHealthy(client *http.Client, addr string, deadline time.Time) error {
	var lastErr error
	for {
		lastErr = func() error {
			resp, err := client.Get("http://" + addr + "/drain")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %s", resp.Status)
			}
			var st drainStatusDoc
			if err := json.Unmarshal(raw, &st); err != nil {
				return err
			}
			if st.Draining || st.State != "running" {
				// Still the outgoing process.
				return fmt.Errorf("state %s", st.State)
			}
			return nil
		}()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// upstreamsOf lists the nodes (other than node itself) whose forwarding
// tables reference node by name — the ones whose tables must be re-pushed
// after node restarts.
func upstreamsOf(f *controller.DeployFile, node string) []string {
	set := map[string]bool{}
	for i := range f.Sessions {
		for owner, groups := range f.Sessions[i].Tables {
			if owner == node {
				continue
			}
			for _, g := range groups {
				for _, a := range g.Addrs {
					if a == node {
						set[owner] = true
					}
				}
			}
		}
	}
	ups := make([]string, 0, len(set))
	for n := range set {
		ups = append(ups, n)
	}
	sort.Strings(ups)
	return ups
}

// rollingRestart walks the selected nodes one at a time: trigger /restart
// (drain, then exec handoff onto the same addresses), wait for the
// replacement to come back healthy, reconfigure it over its control port,
// and re-push the forwarding tables of every upstream that references it —
// only then move to the next node. One node is down at any moment, so a
// redundancy-1 session keeps decoding throughout.
func rollingRestart(f *controller.DeployFile, nodes []string, drainDeadline, wait time.Duration, w io.Writer) error {
	client := &http.Client{Timeout: pushTimeout}
	for _, node := range nodes {
		addr, err := adminAddr(f, node)
		if err != nil {
			return err
		}
		code, body, err := adminPost(client, addr, "/restart?deadline="+drainDeadline.String(), nil)
		if err != nil {
			return fmt.Errorf("node %s: restart: %w", node, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("node %s: restart: %d %s", node, code, strings.TrimSpace(string(body)))
		}
		deadline := time.Now().Add(wait)
		if err := waitHealthy(client, addr, deadline); err != nil {
			return fmt.Errorf("node %s: replacement never came back: %w", node, err)
		}
		// The replacement starts blank: push its full control sequence
		// (settings, peers, tables, start) with dial retries while its
		// control listener finishes coming up.
		msgs, err := f.NodeMessages(node)
		if err != nil {
			return err
		}
		if len(msgs) > 0 {
			if err := pushRetry(f.Daemons[node], msgs, deadline); err != nil {
				return fmt.Errorf("node %s: reconfigure: %w", node, err)
			}
		}
		// Re-push upstream tables that point at the restarted node. Its
		// addresses are pinned across the exec handoff, so this is a
		// correctness no-op but re-arms name→address bindings and covers
		// supervisors that restart onto new ports.
		for _, up := range upstreamsOf(f, node) {
			m := &controller.Message{
				Signal: controller.NCForwardTab,
				Peers:  f.Peers,
				Table:  f.NodeTable(up),
			}
			if err := pushRetry(f.Daemons[up], []*controller.Message{m}, deadline); err != nil {
				return fmt.Errorf("node %s: re-push upstream %s: %w", node, up, err)
			}
		}
		fmt.Fprintf(w, "restarted %s\n", node)
	}
	return nil
}
