// Command ncbench regenerates every table and figure of the paper's
// evaluation (Sec. V). Run a single experiment by name or everything:
//
//	ncbench fig7          # NC vs Non-NC vs Direct TCP on the butterfly
//	ncbench -quick fig8   # reduced sweep for a fast check
//	ncbench all           # the full evaluation
//	ncbench -list         # available experiments
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ncfn/internal/bench"
	"ncfn/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweeps and durations")
	seed := fs.Int64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list experiments and exit")
	outDir := fs.String("out", "", "also write each experiment's output to <dir>/<name>.txt")
	asJSON := fs.Bool("json", false, "emit results as JSON (parsed tables) instead of text")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: ncbench [-quick] [-seed N] [-out dir] [-json] <experiment>|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.List() {
			fmt.Printf("%-18s %s\n", e.Name, e.What)
		}
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one experiment name (or \"all\")")
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	name := fs.Arg(0)
	if *asJSON {
		return runJSON(os.Stdout, name, opts)
	}
	if name == "all" {
		if *outDir != "" {
			return runAllToDir(*outDir, opts)
		}
		return bench.RunAll(os.Stdout, opts)
	}
	e, ok := bench.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try -list)", name)
	}
	w := io.Writer(os.Stdout)
	if *outDir != "" {
		f, closeFn, err := teeFile(*outDir, name)
		if err != nil {
			return err
		}
		defer closeFn()
		w = io.MultiWriter(os.Stdout, f)
	}
	return e.Run(w, opts)
}

// jsonResult is one experiment's structured output: the tables parsed back
// out of its text report, plus the options it ran with.
type jsonResult struct {
	Experiment string          `json:"experiment"`
	What       string          `json:"what"`
	Quick      bool            `json:"quick"`
	Seed       int64           `json:"seed"`
	Tables     []metrics.Table `json:"tables"`
}

// runJSON runs one experiment (or all) with output captured, parses the
// tables, and writes a JSON array of results to w. Progress text goes to
// stderr so stdout stays machine-readable.
func runJSON(w io.Writer, name string, opts bench.Options) error {
	var exps []bench.Experiment
	if name == "all" {
		exps = bench.List()
	} else {
		e, ok := bench.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		exps = []bench.Experiment{e}
	}
	results := make([]jsonResult, 0, len(exps))
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "ncbench: running %s\n", e.Name)
		var buf bytes.Buffer
		if err := e.Run(&buf, opts); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		tables, err := metrics.ParseTables(&buf)
		if err != nil {
			return fmt.Errorf("%s: parsing output: %w", e.Name, err)
		}
		results = append(results, jsonResult{
			Experiment: e.Name, What: e.What,
			Quick: opts.Quick, Seed: opts.Seed,
			Tables: tables,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// teeFile opens <dir>/<name>.txt for an experiment's copy of the output.
func teeFile(dir, name string) (io.Writer, func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// runAllToDir runs every experiment, teeing each to its own file.
func runAllToDir(dir string, opts bench.Options) error {
	for _, e := range bench.List() {
		fmt.Printf("\n===== %s — %s =====\n", e.Name, e.What)
		f, closeFn, err := teeFile(dir, e.Name)
		if err != nil {
			return err
		}
		err = e.Run(io.MultiWriter(os.Stdout, f), opts)
		closeFn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
