// Command nclint is the repo's multichecker: it runs the custom analyzers
// of internal/analysis/... over Go package patterns and exits nonzero when
// any finding survives //nolint:nc filtering.
//
// Usage:
//
//	nclint [flags] [packages]
//
// With no packages it checks ./... . Each analyzer has an enable flag named
// after it (-poolcheck=false disables poolcheck); -json emits findings as a
// JSON array for tooling. -suppressions switches to a report of every
// //nolint:nc site (file:line, silenced analyzers, reason) instead of
// findings; a directive with no reason makes the report exit nonzero, so
// the audit trail for silenced findings stays complete. The exit status is
// 0 for a clean tree, 1 when findings were reported, 2 for usage or loading
// errors — the same contract as go vet, so `make lint` and CI can treat it
// as a blocking check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ncfn/internal/analysis"
	"ncfn/internal/analysis/ncanalysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nclint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	suppressions := fs.Bool("suppressions", false, "report every //nolint:nc site instead of findings; exit 1 if any lacks a reason")
	dir := fs.String("C", ".", "directory to run the go tool from (the module root)")

	all := analysis.All()
	enabled := map[string]*bool{}
	for _, a := range all {
		doc := a.Doc
		if i := indexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, "enable "+a.Name+": "+doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var active []*ncanalysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		fmt.Fprintln(os.Stderr, "nclint: every analyzer is disabled")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := ncanalysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nclint: %v\n", err)
		return 2
	}
	res, err := ncanalysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nclint: %v\n", err)
		return 2
	}

	if *suppressions {
		return reportSuppressions(res, *jsonOut)
	}

	if *jsonOut {
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		out := struct {
			Findings   []finding `json:"findings"`
			Suppressed int       `json:"suppressed"`
		}{Findings: []finding{}, Suppressed: res.Suppressed}
		for _, d := range res.Diagnostics {
			out.Findings = append(out.Findings, finding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "nclint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d.String())
		}
		if res.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, "nclint: %d finding(s) suppressed by //nolint:nc\n", res.Suppressed)
		}
	}

	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "nclint: %d finding(s) in %d package(s)\n", len(res.Diagnostics), len(pkgs))
		return 1
	}
	return 0
}

// reportSuppressions lists every //nolint:nc directive the load saw —
// including stale ones that silenced nothing this run — and fails the
// report when a directive carries no reason. The reason is the only
// durable record of why a finding was judged safe to silence.
func reportSuppressions(res ncanalysis.Result, jsonOut bool) int {
	missing := 0
	for _, d := range res.Directives {
		if d.Reason == "" {
			missing++
		}
	}

	if jsonOut {
		out := struct {
			Suppressions  []ncanalysis.Directive `json:"suppressions"`
			MissingReason int                    `json:"missing_reason"`
		}{Suppressions: res.Directives, MissingReason: missing}
		if out.Suppressions == nil {
			out.Suppressions = []ncanalysis.Directive{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "nclint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Directives {
			analyzers := "-"
			if len(d.Analyzers) > 0 {
				analyzers = ""
				for i, a := range d.Analyzers {
					if i > 0 {
						analyzers += ","
					}
					analyzers += a
				}
			}
			reason := d.Reason
			if reason == "" {
				reason = "<missing reason>"
			}
			fmt.Printf("%s:%d: [%s] %s\n", d.File, d.Line, analyzers, reason)
		}
		fmt.Fprintf(os.Stderr, "nclint: %d suppression site(s), %d without a reason\n", len(res.Directives), missing)
	}

	if missing > 0 {
		return 1
	}
	return 0
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
