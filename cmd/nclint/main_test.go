package main

import (
	"testing"

	"ncfn/internal/analysis/ncanalysis"
)

func TestReportSuppressionsExitCodes(t *testing.T) {
	withReason := ncanalysis.Result{Directives: []ncanalysis.Directive{
		{File: "a.go", Line: 3, Reason: "why", Analyzers: []string{"poolcheck"}},
		{File: "b.go", Line: 9, Reason: "stale but explained"},
	}}
	if got := reportSuppressions(withReason, false); got != 0 {
		t.Errorf("all reasons present: exit = %d, want 0", got)
	}
	if got := reportSuppressions(withReason, true); got != 0 {
		t.Errorf("all reasons present (json): exit = %d, want 0", got)
	}

	missing := ncanalysis.Result{Directives: []ncanalysis.Directive{
		{File: "a.go", Line: 3, Analyzers: []string{"poolcheck", "simtime"}},
	}}
	if got := reportSuppressions(missing, false); got != 1 {
		t.Errorf("missing reason: exit = %d, want 1", got)
	}
	if got := reportSuppressions(missing, true); got != 1 {
		t.Errorf("missing reason (json): exit = %d, want 1", got)
	}

	if got := reportSuppressions(ncanalysis.Result{}, true); got != 0 {
		t.Errorf("no directives: exit = %d, want 0", got)
	}
}
